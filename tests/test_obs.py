"""Telemetry tests: bounded metrics, tracing spans, and run-log sinks.

The contracts under test (docs/observability.md):

* the registry is safe under concurrent publishers and its histograms
  report quantiles within the log-bucket quantization bound of the exact
  (numpy) percentiles while holding O(1) state;
* a crash mid-flush (the ``sink-flush-mid`` point) tears at most the
  trailing JSONL line — :func:`~repro.obs.sinks.read_jsonl` recovers the
  durable prefix and still rejects mid-file corruption;
* the :class:`~repro.obs.sinks.NullSink` default is perfectly silent:
  no records retained, no files created;
* a :class:`~repro.obs.sinks.Recorder` riding the trainer listener hook
  emits event records verbatim and metrics records that reflect only the
  activity since the recorder started (the snapshot/delta contract).
"""

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.obs import (CsvSink, Histogram, JsonlSink, MetricsRegistry,
                       NullSink, Recorder, clear_spans, make_sink,
                       read_jsonl, recent_spans, span, traced)
from repro.obs.registry import delta_state, summarize_histogram
from tests.faultinject import CrashPoint, FaultInjector, SimulatedCrash

# Worst-case relative quantization error of the 20-buckets-per-decade
# geometry is 10**(1/40) - 1 ~= 5.9%; test against a slightly looser 10%.
QUANT_TOL = 0.10


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------

def test_registry_counter_gauge_histogram_roundtrip():
    reg = MetricsRegistry()
    reg.counter("a.b").inc(3)
    reg.gauge("c").set(7.5)
    reg.histogram("d").observe(1.0)
    snap = reg.snapshot()
    assert snap["a.b"] == 3 and snap["c"] == 7.5
    assert snap["d"]["count"] == 1
    # Labeled children are distinct metrics under the same base name.
    reg.counter("a.b", store="nodes").inc()
    assert reg.counter("a.b").value == 3
    assert reg.counter("a.b", store="nodes").value == 1
    assert "a.b{store=nodes}" in reg.snapshot()


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError, match="is a counter"):
        reg.histogram("x")


def test_registry_thread_safety():
    """Concurrent publishers must never lose an increment or a sample."""
    reg = MetricsRegistry()
    threads, per_thread = 8, 2500

    def work(seed: int) -> None:
        rng = np.random.default_rng(seed)
        for v in rng.uniform(0.1, 100.0, per_thread):
            reg.counter("hits").inc()
            reg.histogram("lat").observe(float(v))

    pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert reg.counter("hits").value == threads * per_thread
    state = reg.histogram("lat").state()
    assert state["count"] == threads * per_thread
    assert state["zero"] + sum(state["buckets"].values()) == state["count"]


def test_histogram_percentiles_match_numpy():
    """Bucketed quantiles track np.percentile within the quantization
    bound, across very different shapes, with O(1) state."""
    rng = np.random.default_rng(7)
    for sample in (rng.lognormal(2.0, 1.0, 20_000),       # heavy tail
                   rng.uniform(0.5, 500.0, 20_000),       # flat
                   rng.exponential(30.0, 20_000)):        # latency-like
        h = Histogram("t")
        for v in sample:
            h.observe(float(v))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.percentile(sample, q * 100))
            got = h.quantile(q)
            assert abs(got - exact) / exact < QUANT_TOL, (q, got, exact)
        assert h.max == pytest.approx(sample.max())
        assert h.quantile(1.0) <= h.max
        # Bounded state: sparse buckets never exceed the fixed geometry.
        assert len(h.state()["buckets"]) <= 240


def test_histogram_zero_and_negative_values():
    h = Histogram("t")
    for v in (-1.0, 0.0, 5.0):
        h.observe(v)
    assert h.count == 3 and h.min == -1.0
    assert h.quantile(0.0) <= 0.0


def test_delta_state_isolates_an_interval():
    """count/sum/buckets subtract exactly; re-summarizing the delta gives
    the interval's own percentiles, not the lifetime's."""
    h = Histogram("t")
    for v in (1.0, 1.0, 2.0):
        h.observe(v)
    base = h.state()
    for v in (1000.0, 2000.0, 4000.0):
        h.observe(v)
    d = delta_state(h.state(), base)
    assert d["count"] == 3
    assert d["sum"] == pytest.approx(7000.0)
    s = summarize_histogram(d)
    assert s["p50"] > 100.0            # the early small samples are gone


def test_registry_delta_since_baseline():
    reg = MetricsRegistry()
    reg.counter("n").inc(10)
    base = reg.snapshot()
    reg.counter("n").inc(4)
    reg.histogram("h").observe(3.0)
    out = reg.delta(base)
    assert out["n"] == 4
    assert out["h"]["count"] == 1


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

def test_span_records_duration_and_ring():
    clear_spans()
    reg = MetricsRegistry()
    with span("unit.work", registry=reg):
        pass
    state = reg.histogram("trace.unit.work.ms").state()
    assert state["count"] == 1
    spans = recent_spans()
    assert spans and spans[-1].name == "unit.work"


def test_span_nesting_attributes_self_time():
    clear_spans()
    reg = MetricsRegistry()
    with span("outer", registry=reg):
        with span("inner", registry=reg):
            pass
    outer = [s for s in recent_spans() if s.name == "outer"][-1]
    inner = [s for s in recent_spans() if s.name == "inner"][-1]
    assert inner.parent == "outer"
    assert outer.self_ms <= outer.ms
    assert outer.self_ms == pytest.approx(outer.ms - inner.ms, abs=1e-6)


def test_traced_decorator_forms():
    reg = MetricsRegistry()

    @traced("named.op", registry=reg)
    def f(x):
        return x + 1

    assert f(1) == 2
    assert reg.histogram("trace.named.op.ms").count == 1


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------

def test_null_sink_is_silent(tmp_path):
    rec = Recorder(NullSink(), registry=MetricsRegistry(), flush_every=1)
    for i in range(5):
        rec.listener("epoch", {"epoch": i})
    rec.close()
    assert list(tmp_path.iterdir()) == []      # nothing ever touched disk


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path)
    sink.emit({"ts": 1.0, "type": "event", "event": "epoch",
               "payload": {"n": np.int64(3)}})     # numpy scalars serialize
    sink.close()
    records = read_jsonl(path)
    assert records == [{"ts": 1.0, "type": "event", "event": "epoch",
                        "payload": {"n": 3}}]


def test_csv_sink_rows(tmp_path):
    path = tmp_path / "t.csv"
    sink = CsvSink(path)
    sink.emit({"ts": 1.0, "type": "event", "event": "epoch",
               "payload": {"loss": 0.5, "name": "skip-me"}})
    sink.emit({"ts": 2.0, "type": "metrics", "label": "final",
               "metrics": {"reads": 7, "h": {"p99": 1.5}}})
    sink.close()
    lines = path.read_text().strip().split("\n")
    assert lines[0] == "ts,type,name,value"
    assert "1.0,event,epoch,1" in lines
    assert "1.0,event,epoch.loss,0.5" in lines
    assert "2.0,final,reads,7" in lines
    assert "2.0,final,h.p99,1.5" in lines
    assert not any("skip-me" in line for line in lines)


def test_jsonl_crash_mid_flush_tears_only_the_tail(tmp_path):
    """A crash between the two halves of a flush leaves a valid prefix
    plus at most one partial line; the reader drops exactly that."""
    path = tmp_path / "t.jsonl"
    injector = FaultInjector(CrashPoint.SINK_FLUSH_MID)
    sink = JsonlSink(path, fault_hook=injector.fire)
    # An odd count of equal-length records guarantees the half-way split
    # lands mid-line, producing a genuinely torn trailing record.
    for i in range(7):
        sink.emit({"ts": float(i), "type": "event", "event": "e",
                   "payload": {"i": i}})
    with pytest.raises(SimulatedCrash):
        sink.flush()
    assert path.exists()                      # the first half landed
    records = read_jsonl(path)
    # Durable prefix only: every surviving record is complete and in order.
    assert 0 < len(records) < 7
    assert [r["payload"]["i"] for r in records] == list(range(len(records)))
    # Torn-tail tolerance is NOT blanket corruption tolerance: once the
    # partial line is followed by later data it is mid-file corruption
    # and must raise instead of being silently skipped.
    with open(path, "ab") as fh:
        fh.write(b'\n{"ts": 99, "type": "event", "event": "later", '
                 b'"payload": {}}\n')
    with pytest.raises(ValueError, match="corrupt record"):
        read_jsonl(path)


def test_make_sink_dispatch(tmp_path):
    assert isinstance(make_sink("none"), NullSink)
    assert isinstance(make_sink(None), NullSink)
    assert isinstance(make_sink("jsonl", tmp_path / "a.jsonl"), JsonlSink)
    assert isinstance(make_sink("csv", tmp_path / "a.csv"), CsvSink)
    with pytest.raises(ValueError, match="unknown telemetry sink"):
        make_sink("xml", tmp_path / "a.xml")
    with pytest.raises(ValueError, match="needs a path"):
        make_sink("jsonl")


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------

def test_recorder_events_and_periodic_metrics(tmp_path):
    reg = MetricsRegistry()
    reg.counter("pre.existing").inc(100)       # before the recorder: excluded
    path = tmp_path / "run.jsonl"
    rec = Recorder(JsonlSink(path), registry=reg, flush_every=2)
    reg.counter("pre.existing").inc(5)
    rec.add_source("serve", lambda: {"requests": 42})
    rec.add_source("broken", lambda: 1 / 0)    # a dead source is skipped
    rec.listener("epoch", {"epoch": 0, "loss": 1.5})
    rec.listener("epoch", {"epoch": 1, "loss": 1.2})   # 2nd event: periodic
    rec.close()
    records = read_jsonl(path)
    events = [r for r in records if r["type"] == "event"]
    metrics = [r for r in records if r["type"] == "metrics"]
    assert [e["payload"]["epoch"] for e in events] == [0, 1]
    assert [m["label"] for m in metrics] == ["periodic", "final"]
    final = metrics[-1]["metrics"]
    assert final["pre.existing"] == 5          # delta since construction
    assert final["serve.requests"] == 42
    assert not any(k.startswith("broken") for k in final)


def test_recorder_close_is_idempotent(tmp_path):
    path = tmp_path / "run.jsonl"
    rec = Recorder(JsonlSink(path), registry=MetricsRegistry())
    rec.close()
    rec.close()
    assert sum(1 for r in read_jsonl(path) if r["label"] == "final") == 1


# ---------------------------------------------------------------------------
# Spec / API integration
# ---------------------------------------------------------------------------

def test_telemetry_spec_resolves_and_validates():
    from repro.api import JobError, JobSpec, ObsSpec
    spec = JobSpec(kind="lp-mem", telemetry=ObsSpec(sink="jsonl",
                                                    path="t.jsonl"))
    out = spec.resolve().to_dict()
    assert out["telemetry"]["sink"] == "jsonl"
    assert JobSpec.from_dict(out).telemetry.path == "t.jsonl"
    with pytest.raises(JobError, match="telemetry.sink"):
        JobSpec(kind="lp-mem", telemetry=ObsSpec(sink="xml")).resolve()
    with pytest.raises(JobError, match="flush_every"):
        JobSpec(kind="lp-mem",
                telemetry=ObsSpec(flush_every=0)).resolve()


def test_train_run_writes_parseable_log(tmp_path):
    """End-to-end: a tiny lp-disk run with a JSONL sink produces epoch
    events and a final metrics record carrying the swap histogram and the
    IOStats pull source; with the default (none) sink the same run
    creates no log file."""
    from repro.api import (DataSpec, JobSpec, ModelSpec, ObsSpec,
                           StorageSpec, TrainSpec, run)
    log = tmp_path / "telemetry.jsonl"

    def spec(sink, workdir):
        return JobSpec(
            kind="lp-disk",
            data=DataSpec(dataset="fb15k237", scale=0.02),
            model=ModelSpec(dim=8, encoder="none"),
            train=TrainSpec(epochs=1, batch_size=256, eval_every=0),
            storage=StorageSpec(workdir=str(workdir), partitions=4,
                                logical=4, buffer=2),
            telemetry=ObsSpec(sink=sink, path=str(log)))

    run(spec("none", tmp_path / "w0"))
    assert not log.exists()
    run(spec("jsonl", tmp_path / "w1"))
    records = read_jsonl(log)
    assert any(r["type"] == "event" and r["event"] == "epoch"
               for r in records)
    final = [r for r in records if r["type"] == "metrics"][-1]["metrics"]
    assert final["storage.swaps"] > 0                  # push: swap counter
    assert final["storage.swap.load_ms"]["count"] > 0  # push: histogram
    assert final["storage.reads"] > 0                  # pull: IOStats source
