"""AdjacencyIndex tests: the dual-sorted one-hop sampler (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import AdjacencyIndex, Graph, chain_graph, power_law_graph, star_graph


class TestConstruction:
    def test_invalid_direction(self, tiny_graph):
        with pytest.raises(ValueError):
            AdjacencyIndex(tiny_graph, directions="sideways")

    def test_degrees_both(self, tiny_graph):
        idx = AdjacencyIndex(tiny_graph, directions="both")
        # node 0 (A): out edges 0->2... A has out {B? } — use manual counts:
        out_deg = tiny_graph.degree_out()
        in_deg = tiny_graph.degree_in()
        nodes = np.arange(6)
        np.testing.assert_array_equal(idx.degrees(nodes), out_deg + in_deg)

    def test_memory_bytes_two_copies(self, medium_kg):
        both = AdjacencyIndex(medium_kg, "both").memory_bytes()
        single = AdjacencyIndex(medium_kg, "out").memory_bytes()
        assert both == 2 * single

    def test_neighbors_of(self):
        g = chain_graph(4)  # 0->1->2->3
        idx = AdjacencyIndex(g, "both")
        assert set(idx.neighbors_of(1)) == {0, 2}
        assert set(idx.neighbors_of(0)) == {1}


class TestSampling:
    def test_all_neighbors_when_fanout_large(self):
        g = star_graph(5)  # leaves 1..5 -> hub 0
        idx = AdjacencyIndex(g, "in")
        nbrs, offsets = idx.sample_one_hop(np.array([0]), fanout=100)
        assert sorted(nbrs.tolist()) == [1, 2, 3, 4, 5]
        np.testing.assert_array_equal(offsets, [0])

    def test_fanout_zero_means_all(self):
        g = star_graph(5)
        idx = AdjacencyIndex(g, "in")
        nbrs, _ = idx.sample_one_hop(np.array([0]), fanout=0)
        assert len(nbrs) == 5

    def test_fanout_caps_high_degree(self):
        g = star_graph(50)
        idx = AdjacencyIndex(g, "in")
        nbrs, _ = idx.sample_one_hop(np.array([0]), fanout=7,
                                     rng=np.random.default_rng(0))
        assert len(nbrs) == 7
        assert set(nbrs).issubset(set(range(1, 51)))

    def test_isolated_node_empty(self):
        g = Graph(num_nodes=3, src=np.array([0]), dst=np.array([1]))
        idx = AdjacencyIndex(g, "both")
        nbrs, offsets = idx.sample_one_hop(np.array([2]), fanout=5)
        assert len(nbrs) == 0
        np.testing.assert_array_equal(offsets, [0])

    def test_empty_batch(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        nbrs, offsets = idx.sample_one_hop(np.empty(0, dtype=np.int64), 5)
        assert len(nbrs) == 0 and len(offsets) == 0

    def test_offsets_align_with_counts(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        rng = np.random.default_rng(1)
        nodes = rng.choice(medium_kg.num_nodes, 50, replace=False)
        nbrs, offsets = idx.sample_one_hop(nodes, 8, rng=rng)
        bounds = np.concatenate([offsets, [len(nbrs)]])
        counts = np.diff(bounds)
        expected = np.minimum(idx.degrees(nodes), 8)
        np.testing.assert_array_equal(counts, expected)

    def test_without_replacement_distinct(self):
        g = star_graph(30)
        idx = AdjacencyIndex(g, "in")
        nbrs, _ = idx.sample_one_hop(np.array([0]), fanout=10,
                                     rng=np.random.default_rng(0), replace=False)
        assert len(set(nbrs.tolist())) == 10

    def test_direction_restriction(self):
        g = chain_graph(3)  # 0->1->2
        out_idx = AdjacencyIndex(g, "out")
        in_idx = AdjacencyIndex(g, "in")
        nbrs_out, _ = out_idx.sample_one_hop(np.array([1]), 5)
        nbrs_in, _ = in_idx.sample_one_hop(np.array([1]), 5)
        assert nbrs_out.tolist() == [2]
        assert nbrs_in.tolist() == [0]


@settings(max_examples=25, deadline=None)
@given(num_nodes=st.integers(5, 60), num_edges=st.integers(5, 300),
       fanout=st.integers(1, 12), seed=st.integers(0, 50))
def test_property_sampled_neighbors_are_real_edges(num_nodes, num_edges, fanout, seed):
    """Every sampled neighbor must be an actual graph neighbor, and counts
    must equal min(degree, fanout)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, num_edges)
    dst = (src + 1 + rng.integers(0, num_nodes - 1, num_edges)) % num_nodes
    g = Graph(num_nodes=num_nodes, src=src, dst=dst)
    idx = AdjacencyIndex(g, "both")
    nodes = rng.choice(num_nodes, size=min(10, num_nodes), replace=False)
    nbrs, offsets = idx.sample_one_hop(nodes, fanout, rng=rng)
    bounds = np.concatenate([offsets, [len(nbrs)]])
    for i, node in enumerate(nodes):
        mine = nbrs[bounds[i]:bounds[i + 1]]
        legal = set(g.dst[g.src == node]) | set(g.src[g.dst == node])
        assert set(mine.tolist()).issubset(legal)
        assert len(mine) == min(idx.degrees(np.array([node]))[0], fanout)
