"""Partition scheme, edge buckets, and logical grouping tests (Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (EdgeBuckets, Graph, LogicalGrouping, PartitionScheme,
                         power_law_graph)


class TestPartitionScheme:
    def test_uniform_covers_all_nodes(self):
        scheme = PartitionScheme.uniform(100, 7)
        assert scheme.boundaries[0] == 0 and scheme.boundaries[-1] == 100
        assert scheme.sizes().sum() == 100

    def test_partition_of_roundtrip(self):
        scheme = PartitionScheme.uniform(100, 4)
        for part in range(4):
            nodes = scheme.partition_nodes(part)
            assert (scheme.partition_of(nodes) == part).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PartitionScheme.uniform(10, 0)
        with pytest.raises(ValueError):
            PartitionScheme.uniform(3, 5)

    def test_sizes_near_equal(self):
        scheme = PartitionScheme.uniform(103, 8)
        sizes = scheme.sizes()
        assert sizes.max() - sizes.min() <= 1


class TestEdgeBuckets:
    def test_buckets_partition_all_edges(self, medium_kg, scheme8):
        eb = EdgeBuckets(medium_kg, scheme8)
        total = sum(eb.bucket_size(i, j) for i in range(8) for j in range(8))
        assert total == medium_kg.num_edges

    def test_bucket_edges_belong(self, medium_kg, scheme8):
        eb = EdgeBuckets(medium_kg, scheme8)
        edges = eb.bucket_edges(2, 5)
        if len(edges):
            assert (eb.scheme.partition_of(edges[:, 0]) == 2).all()
            assert (eb.scheme.partition_of(edges[:, -1]) == 5).all()

    def test_bucket_contiguous_on_disk(self, medium_kg, scheme8):
        eb = EdgeBuckets(medium_kg, scheme8)
        s = eb.bucket_slice(1, 1)
        assert s.stop - s.start == eb.bucket_size(1, 1)

    def test_relations_preserved(self, medium_kg, scheme8):
        eb = EdgeBuckets(medium_kg, scheme8)
        edges = eb.bucket_edges(0, 0)
        if len(edges):
            assert edges.shape[1] == 3

    def test_subgraph_for_partitions(self, medium_kg, scheme8):
        eb = EdgeBuckets(medium_kg, scheme8)
        sub = eb.subgraph_for_partitions([0, 1, 2])
        mask = scheme8.partition_of(np.arange(medium_kg.num_nodes)) <= 2
        expected = (mask[medium_kg.src] & mask[medium_kg.dst]).sum()
        assert sub.num_edges == expected
        assert sub.num_nodes == medium_kg.num_nodes

    def test_bucket_bytes(self, medium_kg, scheme8):
        eb = EdgeBuckets(medium_kg, scheme8)
        assert eb.bucket_bytes(0, 1) == eb.bucket_size(0, 1) * 24


class TestLogicalGrouping:
    def test_random_grouping_partitions_physical(self):
        grouping = LogicalGrouping.random(12, 4, rng=np.random.default_rng(0))
        assert grouping.num_logical == 4 and grouping.group_size == 3
        flat = sorted(int(x) for g in grouping.members for x in g)
        assert flat == list(range(12))

    def test_requires_divisibility(self):
        with pytest.raises(ValueError):
            LogicalGrouping.random(10, 4)

    def test_requires_valid_l(self):
        with pytest.raises(ValueError):
            LogicalGrouping.random(4, 8)

    def test_identity(self):
        grouping = LogicalGrouping.identity(5)
        assert grouping.num_logical == 5
        assert grouping.physical_of([3]) == [3]

    def test_physical_of_flattens(self):
        grouping = LogicalGrouping.random(8, 2, rng=np.random.default_rng(1))
        phys = grouping.physical_of([0, 1])
        assert sorted(phys) == list(range(8))

    def test_regrouped_each_epoch(self):
        """Different RNG draws give different groupings (randomization that
        drives COMET's cross-epoch decorrelation)."""
        a = LogicalGrouping.random(16, 4, rng=np.random.default_rng(0))
        b = LogicalGrouping.random(16, 4, rng=np.random.default_rng(1))
        same = all((x == y).all() for x, y in zip(a.members, b.members))
        assert not same

    def test_logical_of_physical(self):
        grouping = LogicalGrouping.random(6, 3, rng=np.random.default_rng(2))
        mapping = grouping.logical_of_physical()
        assert len(mapping) == 6
        for g, members in enumerate(grouping.members):
            for p in members:
                assert mapping[int(p)] == g


@settings(max_examples=20, deadline=None)
@given(num_nodes=st.integers(10, 200), p=st.integers(1, 9), seed=st.integers(0, 20))
def test_property_bucket_totals(num_nodes, p, seed):
    """Edge buckets always partition the edge set, any p."""
    p = min(p, num_nodes)
    g = power_law_graph(num_nodes, num_nodes * 3, seed=seed)
    scheme = PartitionScheme.uniform(num_nodes, p)
    eb = EdgeBuckets(g, scheme)
    total = sum(eb.bucket_size(i, j) for i in range(p) for j in range(p))
    assert total == g.num_edges
