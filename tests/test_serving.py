"""Serving subsystem tests: parity, paging, replacement policy, batching.

The load-bearing guarantees:

* **Golden parity** — scores served for held-out edges are bit-identical
  to offline scoring (`score_edges_offline`, the `evaluate_model` math) on
  the same snapshot.
* **Paging property** — buffer-paged `get_embeddings` equals a full-table
  gather for arbitrary id sets, at any buffer capacity.
* **Read-only restore** — a snapshot serves without its optimizer /
  policy / RNG state ever round-tripping through a trainer.
"""

import numpy as np
import pytest

from repro.graph import load_fb15k237, load_papers100m_mini
from repro.policies import QueryLRU
from repro.serve import (RequestBatcher, ServingEngine, latency_summary,
                         serve_link_prediction, serve_node_classification)
from repro.storage import NodeStore, PartitionBuffer
from repro.graph.partition import PartitionScheme
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         DiskNodeClassificationConfig,
                         DiskNodeClassificationTrainer, LinkPredictionConfig,
                         NodeClassificationConfig, SnapshotError,
                         restore_for_inference, score_edges_offline)

LP_CFG = LinkPredictionConfig(embedding_dim=8, encoder="none",
                              decoder="distmult", batch_size=256,
                              num_negatives=16, num_epochs=1,
                              eval_negatives=16, eval_max_edges=50, seed=0)
NC_CFG = NodeClassificationConfig(hidden_dim=8, num_layers=1, fanouts=(4,),
                                  batch_size=128, num_epochs=1, seed=0)


@pytest.fixture(scope="module")
def lp_data():
    return load_fb15k237(scale=0.03, seed=0)


@pytest.fixture(scope="module")
def lp_snapshot(lp_data, tmp_path_factory):
    """One trained decoder-only disk snapshot shared by the module."""
    tmp = tmp_path_factory.mktemp("serve-lp")
    disk = DiskConfig(workdir=tmp / "work", num_partitions=8, num_logical=4,
                      buffer_capacity=4)
    trainer = DiskLinkPredictionTrainer(lp_data, LP_CFG, disk,
                                        checkpoint_dir=tmp / "ckpt")
    trainer.train()
    trainer.save_snapshot(1, 0, 1)
    return trainer.snapshots.latest(), trainer.node_store.read_all(), trainer


@pytest.fixture()
def lp_engine(lp_snapshot, tmp_path):
    snapshot, _, _ = lp_snapshot
    return serve_link_prediction(snapshot, tmp_path / "serve",
                                 buffer_capacity=2)


# ---------------------------------------------------------------------------
# Paging property: buffer-paged gather == full-table gather
# ---------------------------------------------------------------------------

def test_get_embeddings_matches_full_table(lp_snapshot, lp_engine):
    _, table, _ = lp_snapshot
    rng = np.random.default_rng(42)
    n = len(table)
    for size in (1, 7, 100, 1500):
        ids = rng.integers(0, n, size=size)      # dups, unordered
        got = lp_engine.get_embeddings(ids)
        np.testing.assert_array_equal(got, table[ids])
    # Paged: capacity 2 of 8 partitions, yet every row was served.
    assert lp_engine.buffer.capacity == 2
    assert len(lp_engine.buffer.resident) <= 2
    assert lp_engine.stats.swaps > 0


def test_get_embeddings_edge_cases(lp_snapshot, lp_engine):
    _, table, _ = lp_snapshot
    assert lp_engine.get_embeddings(np.empty(0, dtype=np.int64)).shape == (0, 8)
    with pytest.raises(KeyError, match="out of range"):
        lp_engine.get_embeddings(np.array([len(table) + 5]))
    with pytest.raises(KeyError, match="out of range"):
        lp_engine.get_embeddings(np.array([-1]))


# ---------------------------------------------------------------------------
# Golden parity: serve == offline evaluation scoring, bit for bit
# ---------------------------------------------------------------------------

def test_score_edges_bit_identical_to_offline(lp_data, lp_snapshot, lp_engine):
    snapshot, table, trainer = lp_snapshot
    held_out = lp_data.split.test[:300]
    served = lp_engine.score_edges(held_out)
    offline = score_edges_offline(trainer.model, table, held_out)
    np.testing.assert_array_equal(served, offline)


def test_scores_survive_restore_roundtrip(lp_data, lp_snapshot, tmp_path):
    """Parity holds for a model rebuilt purely from the snapshot (no live
    trainer objects involved on either side)."""
    snapshot, table, _ = lp_snapshot
    engine = serve_link_prediction(snapshot, tmp_path / "s2",
                                   buffer_capacity=3)
    held_out = lp_data.split.test[:100]
    offline = score_edges_offline(engine.model, table, held_out)
    np.testing.assert_array_equal(engine.score_edges(held_out), offline)


def test_topk_matches_full_scoring(lp_data, lp_snapshot, lp_engine):
    _, table, trainer = lp_snapshot
    n = len(table)
    src, rel, k = 5, 0, 10
    all_edges = np.stack([np.full(n, src), np.full(n, rel), np.arange(n)],
                         axis=1)
    full = score_edges_offline(trainer.model, table, all_edges)
    ids, scores = lp_engine.topk_targets(src, k, rel=rel)
    np.testing.assert_array_equal(np.sort(scores)[::-1],
                                  np.sort(full)[-k:][::-1])
    np.testing.assert_array_equal(full[ids], scores)
    # Excluded nodes never appear.
    ids_ex, _ = lp_engine.topk_targets(src, k, rel=rel,
                                       exclude=[int(ids[0]), src])
    assert int(ids[0]) not in ids_ex and src not in ids_ex
    # ... even when k covers the whole table: excluded candidates are
    # removed, not just masked, so the result shrinks instead.
    ids_all, scores_all = lp_engine.topk_targets(src, n, rel=rel,
                                                 exclude=[src])
    assert len(ids_all) == n - 1 and src not in ids_all
    assert np.isfinite(scores_all).all()


# ---------------------------------------------------------------------------
# Read-only buffer + query-driven replacement
# ---------------------------------------------------------------------------

def test_read_only_buffer_refuses_writes(tmp_path):
    scheme = PartitionScheme.uniform(100, 4)
    store = NodeStore(tmp_path / "t.bin", scheme, 4, learnable=False)
    store.initialize(rng=np.random.default_rng(0))
    before = store.read_all().copy()
    buf = PartitionBuffer(store, 2, read_only=True)
    buf.ensure_resident([0, 1])
    with pytest.raises(RuntimeError, match="read-only"):
        buf.apply_gradients(np.array([0]), np.ones((1, 4), dtype=np.float32))
    # Evictions of a read-only buffer never write back.
    buf._dirty[0] = True
    buf.ensure_resident([2, 3])
    np.testing.assert_array_equal(store.read_all(), before)


def test_read_only_buffer_rejects_optimizer(tmp_path):
    from repro.nn.optim import RowAdagrad
    scheme = PartitionScheme.uniform(100, 4)
    store = NodeStore(tmp_path / "t.bin", scheme, 4, learnable=False)
    with pytest.raises(ValueError, match="read-only"):
        PartitionBuffer(store, 2, optimizer=RowAdagrad(lr=0.1), read_only=True)


def test_ensure_resident_evicts_lru_victim(tmp_path):
    scheme = PartitionScheme.uniform(80, 8)
    store = NodeStore(tmp_path / "t.bin", scheme, 2, learnable=False)
    store.initialize(rng=np.random.default_rng(0))
    policy = QueryLRU(8)
    buf = PartitionBuffer(store, 2, read_only=True, replacement_policy=policy)
    policy.touch([0]); buf.ensure_resident([0])
    policy.touch([1]); buf.ensure_resident([1])
    policy.touch([0])                       # 1 is now least recent
    policy.touch([2]); buf.ensure_resident([2])
    assert buf.resident == [0, 2]
    # protect= spares a partition needed later in the same batch.
    policy.touch([3]); buf.ensure_resident([3], protect=[0])
    assert 0 in buf.resident and 3 in buf.resident
    # When victims outnumber unprotected candidates, every unprotected one
    # goes first and protected ones cover only the remainder.
    buf3 = PartitionBuffer(store, 3, read_only=True, replacement_policy=policy)
    buf3.ensure_resident([0, 1, 2])
    buf3.ensure_resident([4, 5], protect=[0, 1])
    assert 2 not in buf3.resident            # the sole unprotected victim
    assert (0 in buf3.resident) != (1 in buf3.resident)


def test_query_lru_ordering():
    policy = QueryLRU(4)
    policy.touch([0, 1])
    policy.touch([2])
    # 3 never touched -> coldest; then the 0/1 pair, frequency tie-break.
    assert policy.choose_victims([0, 1, 2, 3], 1) == [3]
    assert policy.choose_victims([0, 1, 2], 2) == [0, 1]
    policy.touch([1])
    assert policy.choose_victims([0, 1, 2], 1) == [0]
    state = policy.state_dict()
    fresh = QueryLRU(4)
    fresh.load_state_dict(state)
    assert fresh.choose_victims([0, 1, 2], 1) == [0]


def test_topk_scan_does_not_touch_policy(lp_engine):
    """A full-table sweep must not poison the recency state of the
    query-hot partitions (scan resistance)."""
    lp_engine.get_embeddings(np.array([0, 1, 2]))
    touches = lp_engine.policy.touches
    lp_engine.topk_targets(0, 5)
    assert lp_engine.policy.touches == touches + 1   # only the src lookup


def test_stats_count_each_query_once(lp_data, lp_engine):
    """Internal fetches (top-k source row, scoring endpoint gathers) must
    not inflate the request/lookup counters."""
    s = lp_engine.stats
    lp_engine.get_embeddings(np.array([0, 1, 2]))
    assert (s.requests, s.lookups) == (1, 3)
    lp_engine.topk_targets(0, 5)
    assert (s.requests, s.topk_queries, s.lookups) == (2, 1, 3)
    lp_engine.score_edges(lp_data.split.test[:4])
    assert (s.requests, s.edges_scored, s.lookups) == (3, 4, 3)


# ---------------------------------------------------------------------------
# RequestBatcher
# ---------------------------------------------------------------------------

def test_batcher_results_match_direct_calls(lp_data, lp_snapshot, lp_engine):
    _, table, trainer = lp_snapshot
    edges = lp_data.split.test[:20]
    offline = score_edges_offline(trainer.model, table, edges)
    with RequestBatcher(lp_engine, max_batch=8, max_wait_ms=1.0) as batcher:
        embed_reqs = [batcher.submit("embed", np.array([i, i + 1]))
                      for i in range(10)]
        score_req = batcher.submit("score", edges)
        for i, req in enumerate(embed_reqs):
            np.testing.assert_array_equal(req.wait(), table[[i, i + 1]])
        np.testing.assert_array_equal(score_req.wait(), offline)
    # Latencies and batch sizes live in bounded histograms, not lists.
    assert batcher.latency_hist.count == 11
    assert batcher.latency_hist.min >= 0.0
    assert batcher.batch_hist.max <= 8
    summary = batcher.latency_percentiles()
    assert summary["n"] == 11 and summary["p99_ms"] >= summary["p50_ms"]
    assert batcher.stats()["requests"] == 11


def test_batcher_blocking_helpers_and_errors(lp_snapshot, lp_engine):
    _, table, _ = lp_snapshot
    with RequestBatcher(lp_engine, max_batch=4, max_wait_ms=1.0) as batcher:
        np.testing.assert_array_equal(batcher.get_embeddings([3, 1]),
                                      table[[3, 1]])
        # A 2-d id payload is flattened at submit time, so per-request
        # result slicing stays aligned with the merged engine result.
        got = batcher.submit("embed", np.array([[1, 2], [3, 4]])).wait()
        np.testing.assert_array_equal(got, table[[1, 2, 3, 4]])
        with pytest.raises(KeyError, match="out of range"):
            batcher.get_embeddings([10 ** 6])
        # The worker survives a failed batch and keeps serving.
        np.testing.assert_array_equal(batcher.get_embeddings([2]), table[[2]])
    with pytest.raises(RuntimeError, match="not running"):
        batcher.get_embeddings([0])


def test_latency_summary_empty():
    assert latency_summary([])["n"] == 0


# ---------------------------------------------------------------------------
# Encode-on-read (GNN forward over the in-buffer subgraph)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def nc_snapshot(tmp_path_factory):
    data = load_papers100m_mini(num_nodes=600, num_edges=4800, feat_dim=8,
                                num_classes=5, seed=0)
    tmp = tmp_path_factory.mktemp("serve-nc")
    disk = DiskNodeClassificationConfig(workdir=tmp / "work",
                                        num_partitions=8, buffer_capacity=4)
    trainer = DiskNodeClassificationTrainer(data, NC_CFG, disk,
                                            checkpoint_dir=tmp / "ckpt")
    trainer.train()
    trainer.save_snapshot(1, 0, 1)
    return trainer.snapshots.latest(), data


def test_nc_classify_deterministic_and_paged(nc_snapshot, tmp_path):
    snapshot, data = nc_snapshot
    engine = serve_node_classification(snapshot, data, tmp_path / "serve",
                                       buffer_capacity=2)
    # Query nodes span all 8 partitions; capacity 2 forces chunked encoding.
    ids = np.arange(0, 600, 11)
    preds = engine.classify(ids, seed=7)
    assert preds.shape == ids.shape
    assert preds.min() >= 0 and preds.max() < 5
    np.testing.assert_array_equal(preds, engine.classify(ids, seed=7))
    assert engine.stats.nodes_encoded == 2 * len(ids)
    # Empty queries keep the encoder's output width (hidden_dim, not the
    # feature dim), so downstream head matmuls stay well-shaped.
    assert engine.classify(np.empty(0, dtype=np.int64)).shape == (0,)
    assert engine.encode_nodes(np.empty(0, dtype=np.int64)).shape == (0, 8)


def test_lp_encoder_serving(lp_data, tmp_path):
    """Encoder snapshots score through encode-on-read (sampled over the
    in-buffer subgraph, reproducible under a fixed seed)."""
    cfg = LinkPredictionConfig(embedding_dim=8, encoder="graphsage",
                               num_layers=1, fanouts=(4,), batch_size=256,
                               num_negatives=16, num_epochs=1,
                               eval_negatives=16, eval_max_edges=50, seed=0)
    disk = DiskConfig(workdir=tmp_path / "work", num_partitions=8,
                      num_logical=4, buffer_capacity=4)
    trainer = DiskLinkPredictionTrainer(lp_data, cfg, disk,
                                        checkpoint_dir=tmp_path / "ckpt")
    trainer.train()
    trainer.save_snapshot(1, 0, 1)
    engine = serve_link_prediction(trainer.snapshots.latest(),
                                   tmp_path / "serve", buffer_capacity=4,
                                   graph=trainer._train_graph())
    targets = np.array([3, 10, 42])
    reprs = engine.encode_nodes(targets, seed=5)
    assert reprs.shape == (3, 8) and np.isfinite(reprs).all()
    np.testing.assert_array_equal(reprs, engine.encode_nodes(targets, seed=5))
    scores = engine.score_edges(lp_data.split.test[:20])
    assert scores.shape == (20,) and np.isfinite(scores).all()
    # top-k over raw table rows would rank inconsistently with the encoded
    # score_edges path; encoder snapshots must refuse it.
    with pytest.raises(RuntimeError, match="decoder-only"):
        engine.topk_targets(0, 5)


def test_decoder_only_encode_is_the_table_gather(lp_engine):
    # Decoder-only snapshots have no message passing: the node
    # representation IS the stored row, so encode-on-read degrades to the
    # paged gather and every snapshot serves all four query families
    # (the serving-fleet endpoint contract). Classification still needs a
    # trained head.
    ids = np.array([1, 3, 2, 3])
    np.testing.assert_array_equal(lp_engine.encode_nodes(ids),
                                  lp_engine.get_embeddings(ids))
    with pytest.raises(RuntimeError, match="classification"):
        lp_engine.classify(np.array([1]))


# ---------------------------------------------------------------------------
# Inference-only restore
# ---------------------------------------------------------------------------

def test_restore_for_inference_reads_only_model_and_table(lp_snapshot):
    snapshot, table, _ = lp_snapshot
    restore = restore_for_inference(snapshot)
    assert restore.trainer_kind == "lp-disk"
    np.testing.assert_array_equal(restore.node_table, table)
    assert "decoder.relations" in restore.model_state
    # Optimizer / policy / rng state stay untouched in the snapshot: the
    # restore object carries none of them.
    assert not any(k.startswith("gnn_opt") for k in restore.model_state)
    assert restore.config["encoder"] == "none"


def test_serve_rejects_wrong_kind_and_layout(lp_snapshot, nc_snapshot,
                                             tmp_path):
    lp_snap, _, _ = lp_snapshot
    nc_snap, nc_data = nc_snapshot
    with pytest.raises(SnapshotError, match="expected one of"):
        serve_link_prediction(nc_snap, tmp_path / "a")
    with pytest.raises(SnapshotError, match="expected one of"):
        serve_node_classification(lp_snap, nc_data, tmp_path / "b")
    # Partition-count mismatch vs the snapshot's recorded layout.
    with pytest.raises(SnapshotError, match="layout"):
        serve_link_prediction(lp_snap, tmp_path / "c", num_partitions=5)


def test_nc_mem_snapshot_serves_and_pins_dataset(tmp_path):
    """nc-mem snapshots serve directly, and their recorded dataset
    fingerprint rejects a same-shape regeneration with different data."""
    from repro.train import NodeClassificationTrainer
    data = load_papers100m_mini(num_nodes=300, num_edges=2400, feat_dim=8,
                                num_classes=5, seed=0)
    cfg = NodeClassificationConfig(hidden_dim=16, num_layers=1, fanouts=(4,),
                                   batch_size=128, num_epochs=1, seed=0)
    trainer = NodeClassificationTrainer(data, cfg,
                                        checkpoint_dir=tmp_path / "ckpt",
                                        checkpoint_every=1)
    trainer.train()
    snapshot = trainer.snapshots.latest()
    engine = serve_node_classification(snapshot, data, tmp_path / "serve",
                                       buffer_capacity=2)
    preds = engine.classify(np.arange(20), seed=1)
    assert preds.shape == (20,)
    # hidden_dim (16) differs from feat_dim (8): empty queries must keep
    # the encoder's output width so the head matmul stays well-shaped.
    assert engine.encode_nodes(np.empty(0, dtype=np.int64)).shape == (0, 16)
    assert engine.classify(np.empty(0, dtype=np.int64)).shape == (0,)
    other = load_papers100m_mini(num_nodes=300, num_edges=2400, feat_dim=8,
                                 num_classes=5, seed=9)
    with pytest.raises(SnapshotError, match="different dataset"):
        serve_node_classification(snapshot, other, tmp_path / "serve2")


def test_serve_accepts_checkpoint_root(lp_snapshot, tmp_path):
    snapshot, table, _ = lp_snapshot
    engine = serve_link_prediction(snapshot.parent, tmp_path / "serve",
                                   buffer_capacity=2)
    np.testing.assert_array_equal(engine.get_embeddings(np.arange(5)),
                                  table[:5])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_serve_cli_smoke(lp_snapshot, tmp_path, capsys):
    from repro.cli import main
    snapshot, _, _ = lp_snapshot
    rc = main(["serve", "--snapshot", str(snapshot),
               "--workdir", str(tmp_path / "cli"),
               "--embed", "1,2", "--topk", "5", "3", "--score", "5:10",
               "--bench", "200", "--mix", "zipf"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "top-3 targets" in out and "QPS" in out and "score(5:10)" in out
