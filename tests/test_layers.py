"""GNN layer tests: manual-aggregation references and gradient flow."""

import numpy as np
import pytest

from repro.nn import (DenseLayerView, GATLayer, GCNLayer, GraphSageLayer,
                      Linear, Tensor, make_layer)


@pytest.fixture
def simple_view():
    """Two output nodes; node0 has neighbors rows {0,1}, node1 has {2}.

    h rows: [n0_nbrA, n0_nbrB, n1_nbrC, out0, out1]
    """
    return DenseLayerView(
        repr_map=np.array([0, 1, 2]),
        nbr_offsets=np.array([0, 2]),
        self_start=3,
        num_outputs=2,
    )


def make_h(rows, dim, seed=0, requires_grad=False):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(0, 1, (rows, dim)).astype(np.float32),
                  requires_grad=requires_grad)


class TestGraphSage:
    def test_matches_manual_mean_aggregation(self, simple_view):
        dim = 4
        layer = GraphSageLayer(dim, 3, activation=None)
        h = make_h(5, dim, seed=1)
        out = layer(h, simple_view).data
        x = h.data
        nbr_mean0 = x[[0, 1]].mean(axis=0)
        nbr_mean1 = x[[2]].mean(axis=0)
        w_self, w_nbr, b = layer.w_self.data, layer.w_nbr.data, layer.bias.data
        expect0 = x[3] @ w_self + nbr_mean0 @ w_nbr + b
        expect1 = x[4] @ w_self + nbr_mean1 @ w_nbr + b
        np.testing.assert_allclose(out, np.stack([expect0, expect1]), rtol=1e-4)

    def test_zero_neighbor_node(self):
        view = DenseLayerView(repr_map=np.array([0]), nbr_offsets=np.array([0, 1]),
                              self_start=1, num_outputs=2)
        layer = GraphSageLayer(4, 4, activation=None)
        out = layer(make_h(3, 4), view)
        assert out.shape == (2, 4)
        assert np.isfinite(out.data).all()

    def test_gradients_flow_to_all_params(self, simple_view):
        layer = GraphSageLayer(4, 3)
        h = make_h(5, 4, requires_grad=True)
        layer(h, simple_view).sum().backward()
        assert h.grad is not None
        for p in layer.parameters():
            assert p.grad is not None, p.name

    def test_relu_activation_applied(self, simple_view):
        layer = GraphSageLayer(4, 3, activation="relu")
        out = layer(make_h(5, 4), simple_view)
        assert (out.data >= 0).all()


class TestGCN:
    def test_normalization(self, simple_view):
        dim = 4
        layer = GCNLayer(dim, 3, activation=None)
        h = make_h(5, dim, seed=2)
        out = layer(h, simple_view).data
        x = h.data
        agg0 = (x[[0, 1]].sum(axis=0) + x[3]) / 3.0
        agg1 = (x[[2]].sum(axis=0) + x[4]) / 2.0
        expect = np.stack([agg0, agg1]) @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out, expect, rtol=1e-4)


class TestGAT:
    def test_output_shape_and_finite(self, simple_view):
        layer = GATLayer(4, 3, activation=None)
        out = layer(make_h(5, 4, seed=3), simple_view)
        assert out.shape == (2, 3)
        assert np.isfinite(out.data).all()

    def test_attention_is_convex_combination(self):
        """With identity W, the pre-bias GAT output must lie in the convex
        hull of {self, neighbors} projections — attention weights sum to 1."""
        dim = 2
        layer = GATLayer(dim, dim, activation=None)
        layer.weights[0].data = np.eye(dim, dtype=np.float32)
        layer.bias.data[:] = 0.0
        view = DenseLayerView(repr_map=np.array([0, 1]),
                              nbr_offsets=np.array([0]), self_start=2,
                              num_outputs=1)
        h = Tensor(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]], dtype=np.float32))
        out = layer(h, view).data[0]
        assert out[0] >= -1e-5 and out[1] >= -1e-5
        assert out.sum() <= 1.0 + 1e-5

    def test_multi_head_averages(self, simple_view):
        layer = GATLayer(4, 3, num_heads=4, activation=None)
        out = layer(make_h(5, 4), simple_view)
        assert out.shape == (2, 3)

    def test_gradients_flow(self, simple_view):
        layer = GATLayer(4, 3, num_heads=2)
        h = make_h(5, 4, requires_grad=True)
        layer(h, simple_view).sum().backward()
        assert h.grad is not None
        for p in layer.parameters():
            assert p.grad is not None


class TestRegistry:
    def test_make_layer(self):
        assert isinstance(make_layer("graphsage", 4, 4), GraphSageLayer)
        assert isinstance(make_layer("GCN", 4, 4), GCNLayer)
        assert isinstance(make_layer("gat", 4, 4), GATLayer)

    def test_unknown_layer(self):
        with pytest.raises(ValueError, match="unknown GNN layer"):
            make_layer("transformer", 4, 4)

    def test_linear_shapes(self):
        layer = Linear(3, 7)
        out = layer(make_h(5, 3))
        assert out.shape == (5, 7)
