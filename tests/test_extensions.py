"""Tests for the extension modules: pipelined trainer, prefetching, TransE,
filtered evaluation, Hilbert policy, checkpointing, preprocessing, CLI."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.graph import (Graph, PartitionScheme, chain_graph, deduplicate_edges,
                         degree_order, densify_ids, export_tsv, import_tsv,
                         load_fb15k237, power_law_graph, shuffle_node_ids)
from repro.nn import RowAdagrad, Tensor, TransE
from repro.policies import HilbertOrderingPolicy, hilbert_bucket_order
from repro.storage import (NodeStore, PartitionBuffer, Prefetcher,
                           PrefetchingBufferManager)
from repro.train import (LinkPredictionConfig, LinkPredictionTrainer,
                         PipelinedLinkPredictionTrainer, TripleFilter,
                         filtered_ranks, load_checkpoint, save_checkpoint)


# ---------------------------------------------------------------------------
# Pipelined trainer
# ---------------------------------------------------------------------------

class TestPipelinedTrainer:
    @pytest.fixture(scope="class")
    def data(self):
        return load_fb15k237(scale=0.05, seed=0)

    def config(self, **kw):
        defaults = dict(embedding_dim=16, num_layers=1, fanouts=(8,),
                        batch_size=256, num_negatives=32, num_epochs=2,
                        eval_negatives=64, eval_max_edges=300, seed=0)
        defaults.update(kw)
        return LinkPredictionConfig(**defaults)

    def test_pipelined_training_learns(self, data):
        trainer = PipelinedLinkPredictionTrainer(data, self.config(num_epochs=3),
                                                 num_sample_workers=2,
                                                 pipeline_depth=4)
        before = trainer.evaluate().mrr
        result = trainer.train()
        assert result.final_mrr > before * 1.5
        assert result.epochs[-1].loss < result.epochs[0].loss
        assert len(trainer.pipeline_stats) == 3
        assert trainer.pipeline_stats[0].batches == result.epochs[0].num_batches

    def test_pipelined_matches_sync_quality(self, data):
        """Bounded staleness must not meaningfully hurt model quality."""
        sync = LinkPredictionTrainer(data, self.config(num_epochs=3)).train()
        piped = PipelinedLinkPredictionTrainer(
            data, self.config(num_epochs=3)).train()
        assert piped.final_mrr > sync.final_mrr * 0.8

    def test_invalid_pipeline_params(self, data):
        with pytest.raises(ValueError):
            PipelinedLinkPredictionTrainer(data, self.config(),
                                           num_sample_workers=0)
        with pytest.raises(ValueError):
            PipelinedLinkPredictionTrainer(data, self.config(),
                                           pipeline_depth=0)


# ---------------------------------------------------------------------------
# Prefetching
# ---------------------------------------------------------------------------

class TestPrefetching:
    def make(self, tmp_path, capacity=2):
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "pf.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        buf = PartitionBuffer(store, capacity, optimizer=RowAdagrad(lr=0.1))
        return store, buf

    def test_prefetcher_stages_partitions(self, tmp_path):
        store, _ = self.make(tmp_path)
        pf = Prefetcher(store)
        pf.start([0, 1])
        pf.wait()
        assert pf.take(0) is not None
        assert pf.take(1) is not None
        assert pf.take(2) is None
        assert pf.prefetch_hits == 2 and pf.prefetch_misses == 1

    def test_manager_walks_plan_with_hits(self, tmp_path):
        _, buf = self.make(tmp_path)
        mgr = PrefetchingBufferManager(buf, enabled=True)
        steps = [[0, 1], [1, 2], [2, 3]]
        for idx, parts in enumerate(steps):
            nxt = steps[idx + 1] if idx + 1 < len(steps) else None
            mgr.load_step(parts, nxt)
            assert sorted(buf.resident) == sorted(parts)
        mgr.finish()
        assert mgr.hits >= 1  # steps 2 and 3 should hit staged partitions

    def test_admit_preloaded_equivalent_to_admit(self, tmp_path):
        store, buf = self.make(tmp_path)
        data, state = store.read_partition(2)
        buf.admit_preloaded(2, data, state)
        rows = buf.gather(np.array([25]))
        direct, _ = store.read_partition(2)
        np.testing.assert_allclose(rows[0], direct[5])

    def test_admit_preloaded_validates_shape(self, tmp_path):
        _, buf = self.make(tmp_path)
        with pytest.raises(ValueError):
            buf.admit_preloaded(0, np.zeros((3, 4), dtype=np.float32), None)

    def test_disabled_manager_reads_directly(self, tmp_path):
        _, buf = self.make(tmp_path)
        mgr = PrefetchingBufferManager(buf, enabled=False)
        mgr.load_step([0, 1], [[1, 2]])
        assert buf.resident == [0, 1]
        assert mgr.hits == 0

    def test_writeback_survives_prefetch_path(self, tmp_path):
        """Updates applied to a prefetched partition must reach disk."""
        store, buf = self.make(tmp_path)
        initial, _ = store.read_partition(0)
        row3_before = initial[3].copy()
        mgr = PrefetchingBufferManager(buf, enabled=True)
        mgr.load_step([0, 1], [1, 2])
        buf.apply_gradients(np.array([3]), np.ones((1, 4), dtype=np.float32))
        mgr.load_step([1, 2], None)   # evicts dirty partition 0
        fresh, state = store.read_partition(0)
        assert not np.allclose(fresh[3], row3_before)
        assert (state[3] > 0).all()
        mgr.finish()


# ---------------------------------------------------------------------------
# TransE
# ---------------------------------------------------------------------------

class TestTransE:
    def test_perfect_translation_scores_best(self):
        dec = TransE(1, 4, rng=np.random.default_rng(0))
        rel = np.array([0])
        src = Tensor(np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32))
        perfect = Tensor((src.data + dec.relations.data[0]))
        off = Tensor(perfect.data + 3.0)
        good = float(dec.score_edges(src, rel, perfect).data[0])
        bad = float(dec.score_edges(src, rel, off).data[0])
        assert good > bad
        assert good == pytest.approx(0.0, abs=1e-3)

    def test_training_with_transe(self):
        data = load_fb15k237(scale=0.05, seed=0)
        cfg = LinkPredictionConfig(embedding_dim=16, encoder="none",
                                   decoder="transe", batch_size=256,
                                   num_negatives=32, num_epochs=3,
                                   eval_negatives=64, eval_max_edges=300,
                                   embedding_lr=0.05, seed=0)
        trainer = LinkPredictionTrainer(data, cfg)
        before = trainer.evaluate().mrr
        assert trainer.train().final_mrr > before


# ---------------------------------------------------------------------------
# Filtered evaluation
# ---------------------------------------------------------------------------

class TestFilteredEvaluation:
    def test_filter_contains(self):
        edges = np.array([[0, 1, 2], [3, 0, 4]])
        filt = TripleFilter(edges)
        assert filt.contains(0, 1, 2) and filt.contains(3, 0, 4)
        assert not filt.contains(0, 1, 4)
        assert len(filt) == 2

    def test_filter_without_relations(self):
        edges = np.array([[0, 2], [1, 3]])
        filt = TripleFilter(edges)
        assert filt.contains(0, 0, 2)

    def test_filtered_ranks_exclude_true_candidates(self):
        pos = np.array([1.0])
        neg = np.array([[2.0, 0.5]])       # candidate 0 outranks the positive
        mask = np.array([[True, False]])   # ...but is a known true triple
        raw = filtered_ranks(pos, neg, np.zeros_like(mask))
        filt = filtered_ranks(pos, neg, mask)
        assert raw[0] == 2.0 and filt[0] == 1.0

    def test_mask_shape(self):
        filt = TripleFilter(np.array([[0, 0, 5]]))
        mask = filt.mask(np.array([0, 1]), np.array([0, 0]), np.array([5, 6]))
        assert mask.shape == (2, 2)
        assert mask[0, 0] and not mask[0, 1] and not mask[1, 0]


# ---------------------------------------------------------------------------
# Hilbert / PBG-style policy
# ---------------------------------------------------------------------------

class TestHilbertPolicy:
    def test_curve_is_a_permutation(self):
        order = hilbert_bucket_order(8)
        assert len(order) == 64
        assert len(set(order)) == 64

    def test_non_power_of_two(self):
        order = hilbert_bucket_order(5)
        assert len(order) == 25
        assert all(0 <= i < 5 and 0 <= j < 5 for i, j in order)

    def test_plan_validates(self):
        plan = HilbertOrderingPolicy(8, 3).plan_epoch(0)
        plan.validate()

    def test_consecutive_buckets_share_partitions(self):
        """The locality property the curve buys: most consecutive buckets
        need no partition swap at all."""
        order = hilbert_bucket_order(8)
        shared = sum(1 for a, b in zip(order, order[1:])
                     if set(a) & set(b))
        assert shared / len(order) > 0.5

    def test_deterministic_across_epochs_unlike_comet(self):
        """Hilbert's defining weakness vs COMET is not partition-level bias
        (the curve revisits regions fairly evenly) but *determinism*: every
        epoch replays the identical example order, so ordering noise never
        averages out — COMET regroups and reshuffles each epoch."""
        from repro.policies import CometPolicy
        h = HilbertOrderingPolicy(16, 4)
        plan_a = h.plan_epoch(0, np.random.default_rng(0))
        plan_b = h.plan_epoch(1, np.random.default_rng(1))
        assert [s.buckets for s in plan_a.steps] == [s.buckets for s in plan_b.steps]
        comet = CometPolicy(16, 8, 4)
        ca = comet.plan_epoch(0, np.random.default_rng(0))
        cb = comet.plan_epoch(1, np.random.default_rng(1))
        assert [s.buckets for s in ca.steps] != [s.buckets for s in cb.steps]

    def test_bias_is_computable(self):
        from repro.graph import EdgeBuckets
        from repro.policies import edge_permutation_bias
        g = power_law_graph(2000, 20000, seed=3)
        eb = EdgeBuckets(g, PartitionScheme.uniform(g.num_nodes, 16))
        b = edge_permutation_bias(HilbertOrderingPolicy(16, 4).plan_epoch(0), eb)
        assert 0.0 <= b <= 1.0

    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            HilbertOrderingPolicy(8, 1)


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------

class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        data = load_fb15k237(scale=0.05, seed=0)
        cfg = LinkPredictionConfig(embedding_dim=16, num_layers=1, fanouts=(8,),
                                   batch_size=256, num_negatives=32,
                                   num_epochs=1, eval_negatives=64,
                                   eval_max_edges=200, seed=0)
        trainer = LinkPredictionTrainer(data, cfg)
        trainer.train()
        mrr_before = trainer.evaluate().mrr
        save_checkpoint(tmp_path / "ckpt", trainer.model, cfg,
                        embeddings=trainer.embeddings.table,
                        optimizer_state=trainer.embeddings.state)

        fresh = LinkPredictionTrainer(data, cfg)
        fields, embeddings, state = load_checkpoint(tmp_path / "ckpt",
                                                    fresh.model)
        fresh.embeddings.table = embeddings
        fresh.embeddings.state = state
        assert fields["embedding_dim"] == 16
        assert fresh.evaluate().mrr == pytest.approx(mrr_before, abs=1e-6)

    def test_checkpoint_files_present(self, tmp_path):
        data = load_fb15k237(scale=0.05, seed=0)
        cfg = LinkPredictionConfig(embedding_dim=16, num_layers=1, fanouts=(8,))
        trainer = LinkPredictionTrainer(data, cfg)
        out = save_checkpoint(tmp_path / "c2", trainer.model, cfg,
                              embeddings=trainer.embeddings.table)
        assert (out / "model.npz").exists()
        assert (out / "embeddings.npy").exists()
        meta = json.loads((out / "config.json").read_text())
        assert meta["class"] == "LinkPredictionConfig"


# ---------------------------------------------------------------------------
# Preprocessing
# ---------------------------------------------------------------------------

class TestPreprocess:
    def test_densify_ids(self):
        src = np.array([100, 200, 100])
        dst = np.array([200, 300, 300])
        rel = np.array([7, 7, 9])
        graph, node_map, rel_map = densify_ids(src, dst, rel)
        assert graph.num_nodes == 3
        assert graph.num_relations == 2
        np.testing.assert_array_equal(node_map, [100, 200, 300])
        np.testing.assert_array_equal(rel_map, [7, 9])
        # Edge structure preserved under the mapping.
        np.testing.assert_array_equal(node_map[graph.src], src)
        np.testing.assert_array_equal(node_map[graph.dst], dst)

    def test_shuffle_preserves_structure(self):
        g = power_law_graph(100, 800, seed=0)
        shuffled, perm = shuffle_node_ids(g, seed=1)
        assert shuffled.num_edges == g.num_edges
        # Degrees are permuted, not changed.
        np.testing.assert_array_equal(
            np.sort(shuffled.degree_out()), np.sort(g.degree_out()))

    def test_shuffle_carries_features(self):
        g = power_law_graph(50, 200, seed=0)
        g.node_features = np.arange(100, dtype=np.float32).reshape(50, 2)
        shuffled, perm = shuffle_node_ids(g, seed=2)
        # feature of new id perm[v] equals feature of old v
        v = 7
        np.testing.assert_allclose(shuffled.node_features[perm[v]],
                                   g.node_features[v])

    def test_deduplicate(self):
        g = Graph(num_nodes=3, src=np.array([0, 0, 1]),
                  dst=np.array([1, 1, 2]))
        d = deduplicate_edges(g)
        assert d.num_edges == 2

    def test_degree_order_hot_first(self):
        g = power_law_graph(200, 3000, seed=1)
        ordered, mapping = degree_order(g)
        deg = ordered.degree_in() + ordered.degree_out()
        assert deg[0] == deg.max()
        assert (np.diff(deg) <= 0).all()

    def test_tsv_roundtrip(self, tmp_path):
        g = power_law_graph(50, 300, num_relations=4, seed=0)
        path = export_tsv(g, tmp_path / "edges.tsv")
        back = import_tsv(path)
        assert back.num_edges == g.num_edges
        assert back.num_relations == g.num_relations

    def test_import_tsv_column_check(self, tmp_path):
        (tmp_path / "bad.tsv").write_text("1\t2\t3\t4\n")
        with pytest.raises(ValueError):
            import_tsv(tmp_path / "bad.tsv")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCLI:
    def test_info(self, capsys):
        from repro.cli import main
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "freebase86m" in out

    def test_autotune(self, capsys):
        from repro.cli import main
        assert main(["autotune", "--dataset", "freebase86m",
                     "--memory-gb", "61"]) == 0
        assert "buffer capacity" in capsys.readouterr().out

    def test_train_lp_smoke(self, capsys):
        from repro.cli import main
        assert main(["train-lp", "--dataset", "fb15k237", "--scale", "0.03",
                     "--epochs", "1", "--dim", "8", "--fanouts", "4"]) == 0
        assert "final MRR" in capsys.readouterr().out

    def test_train_lp_disk_with_checkpoint(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["train-lp", "--dataset", "fb15k237", "--scale", "0.03",
                     "--epochs", "1", "--dim", "8", "--fanouts", "4",
                     "--disk", "--partitions", "8", "--logical", "4",
                     "--buffer", "4",
                     "--workdir", str(tmp_path / "wd"),
                     "--save", str(tmp_path / "ckpt")]) == 0
        assert (tmp_path / "ckpt" / "model.npz").exists()

    def test_train_nc_smoke(self, capsys):
        from repro.cli import main
        assert main(["train-nc", "--nodes", "800", "--epochs", "1",
                     "--dim", "8", "--fanouts", "4", "--batch-size", "128"]) == 0
        assert "final accuracy" in capsys.readouterr().out

    def test_config_file_overrides(self, tmp_path, capsys):
        from repro.cli import main
        cfg = tmp_path / "run.json"
        cfg.write_text(json.dumps({"epochs": 1, "dim": 8, "fanouts": [4],
                                   "scale": 0.03}))
        assert main(["train-lp", "--config", str(cfg)]) == 0

    def test_config_file_rejects_unknown(self, tmp_path):
        from repro.cli import main
        cfg = tmp_path / "bad.json"
        cfg.write_text(json.dumps({"nonexistent_option": 1}))
        with pytest.raises(SystemExit):
            main(["train-lp", "--config", str(cfg)])

    def test_unknown_lp_dataset(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["train-lp", "--dataset", "cora"])
