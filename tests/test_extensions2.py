"""Tests for the second extension batch: GIN / pooling-GraphSage layers,
degree-weighted negatives, all-candidate and filtered MRR evaluation."""

import numpy as np
import pytest

from repro.core import DenseSampler, GNNEncoder
from repro.graph import load_fb15k237, power_law_graph
from repro.nn import DenseLayerView, GINLayer, PoolGraphSageLayer, Tensor, make_layer
from repro.nn.layers import _segment_max
from repro.train import (DegreeWeightedNegativeSampler, LinkPredictionConfig,
                         LinkPredictionTrainer, TripleFilter, evaluate_model)
from tests.conftest import numeric_gradient


@pytest.fixture
def simple_view():
    return DenseLayerView(repr_map=np.array([0, 1, 2]),
                          nbr_offsets=np.array([0, 2]),
                          self_start=3, num_outputs=2)


class TestSegmentMax:
    def test_matches_manual(self):
        vals = Tensor(np.array([[1., 5.], [3., 2.], [7., 0.]], dtype=np.float32))
        out = _segment_max(vals, np.array([0, 2]), 2)
        np.testing.assert_allclose(out.data, [[3., 5.], [7., 0.]])

    def test_empty_segment_zero(self):
        vals = Tensor(np.ones((2, 2), dtype=np.float32))
        out = _segment_max(vals, np.array([0, 2, 2]), 3)
        np.testing.assert_allclose(out.data[0], [1., 1.])
        np.testing.assert_allclose(out.data[1], [0., 0.])
        np.testing.assert_allclose(out.data[2], [0., 0.])

    def test_gradient(self):
        from repro.nn import no_grad
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (5, 2)).astype(np.float32)
        offsets = np.array([0, 3])

        def apply(t):
            return (_segment_max(t, offsets, 2) ** 2.0).sum()

        t = Tensor(x.copy(), requires_grad=True)
        apply(t).backward()

        def f(a):
            with no_grad():
                return float(apply(Tensor(a)).data)

        numeric = numeric_gradient(f, x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=2e-2)


class TestNewLayers:
    def test_gin_eps_used(self, simple_view):
        layer = GINLayer(4, 4, activation=None, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(5, 4)).astype(np.float32))
        base = layer(h, simple_view).data.copy()
        layer.eps.data[:] = 5.0
        changed = layer(h, simple_view).data
        assert not np.allclose(base, changed)

    def test_pool_sage_differs_from_mean_sage(self, simple_view):
        h = Tensor(np.random.default_rng(2).normal(size=(5, 4)).astype(np.float32))
        pool = make_layer("graphsage-pool", 4, 3, rng=np.random.default_rng(3))
        mean = make_layer("graphsage", 4, 3, rng=np.random.default_rng(3))
        assert not np.allclose(pool(h, simple_view).data,
                               mean(h, simple_view).data)

    @pytest.mark.parametrize("kind", ["gin", "graphsage-pool"])
    def test_encoder_stack_trains(self, kind):
        g = power_law_graph(300, 3000, seed=0)
        sampler = DenseSampler(g, [5, 5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.arange(20))
        enc = GNNEncoder(kind, [6, 6, 6], rng=np.random.default_rng(1))
        h0 = Tensor(np.random.default_rng(2).normal(
            size=(batch.num_nodes, 6)).astype(np.float32), requires_grad=True)
        enc(h0, batch).sum().backward()
        assert h0.grad is not None
        assert all(p.grad is not None for p in enc.parameters())


class TestDegreeWeightedNegatives:
    def test_hubs_oversampled(self):
        degrees = np.array([1000, 1, 1, 1, 1])
        sampler = DegreeWeightedNegativeSampler(degrees, 2000,
                                                rng=np.random.default_rng(0))
        nodes = sampler.sample().nodes
        assert (nodes == 0).mean() > 0.5
        assert nodes.max() < 5

    def test_smoothing_flattens(self):
        degrees = np.array([1000, 1, 1, 1])
        sharp = DegreeWeightedNegativeSampler(degrees, 5000, smoothing=1.0,
                                              rng=np.random.default_rng(0))
        flat = DegreeWeightedNegativeSampler(degrees, 5000, smoothing=0.1,
                                             rng=np.random.default_rng(0))
        assert (sharp.sample().nodes == 0).mean() > (flat.sample().nodes == 0).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            DegreeWeightedNegativeSampler(np.array([1, 2]), 0)
        with pytest.raises(ValueError):
            DegreeWeightedNegativeSampler(np.array([-1, 2]), 5)


class TestAllCandidateEvaluation:
    @pytest.fixture(scope="class")
    def trained(self):
        data = load_fb15k237(scale=0.05, seed=0)
        cfg = LinkPredictionConfig(embedding_dim=16, num_layers=1, fanouts=(8,),
                                   batch_size=256, num_negatives=32,
                                   num_epochs=3, eval_negatives=64,
                                   eval_max_edges=200, seed=0)
        trainer = LinkPredictionTrainer(data, cfg)
        trainer.train()
        return data, trainer, cfg

    def test_all_candidates_runs_and_is_harder(self, trained):
        """Ranking against every node gives a (weakly) lower MRR than ranking
        against a small sampled pool."""
        data, trainer, cfg = trained
        edges = data.split.test[:150]
        sampled = evaluate_model(trainer.model, trainer.embeddings.table,
                                 data.graph, edges, cfg)
        full = evaluate_model(trainer.model, trainer.embeddings.table,
                              data.graph, edges, cfg, all_candidates=True)
        assert full.mrr <= sampled.mrr + 0.02
        assert full.mrr > 0

    def test_filtered_not_worse_than_raw(self, trained):
        data, trainer, cfg = trained
        edges = data.split.test[:100]
        filt = TripleFilter(data.split.train, data.split.valid, data.split.test)
        raw = evaluate_model(trainer.model, trainer.embeddings.table,
                             data.graph, edges, cfg, all_candidates=True)
        filtered = evaluate_model(trainer.model, trainer.embeddings.table,
                                  data.graph, edges, cfg, all_candidates=True,
                                  triple_filter=filt)
        assert filtered.mrr >= raw.mrr
