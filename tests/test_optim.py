"""Optimizer tests: convergence on a quadratic, row-sparse Adagrad semantics."""

import numpy as np
import pytest

from repro.nn import SGD, Adagrad, Adam, RowAdagrad, Tensor, make_optimizer


def quadratic_loss(param):
    target = Tensor(np.array([3.0, -2.0], dtype=np.float32))
    diff = param - target
    return (diff * diff).sum()


@pytest.mark.parametrize("opt_name,lr", [("sgd", 0.1), ("adagrad", 1.0), ("adam", 0.3)])
def test_optimizers_converge_on_quadratic(opt_name, lr):
    param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
    opt = make_optimizer(opt_name, [param], lr=lr)
    for _ in range(200):
        opt.zero_grad()
        quadratic_loss(param).backward()
        opt.step()
    np.testing.assert_allclose(param.data, [3.0, -2.0], atol=0.05)


def test_sgd_momentum_faster_than_plain():
    def run(momentum):
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        opt = SGD([param], lr=0.02, momentum=momentum)
        for _ in range(50):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        return float(quadratic_loss(param).data)

    assert run(0.9) < run(0.0)


def test_weight_decay_shrinks():
    param = Tensor(np.array([10.0], dtype=np.float32), requires_grad=True)
    opt = SGD([param], lr=0.1, weight_decay=1.0)
    opt.zero_grad()
    (param * 0.0).sum().backward()
    opt.step()
    assert abs(float(param.data[0])) < 10.0


def test_optimizer_rejects_empty_params():
    with pytest.raises(ValueError):
        SGD([Tensor(np.zeros(2))], lr=0.1)  # requires_grad=False


def test_optimizer_rejects_bad_lr():
    param = Tensor(np.zeros(2), requires_grad=True)
    with pytest.raises(ValueError):
        Adam([param], lr=0.0)


def test_unknown_optimizer():
    param = Tensor(np.zeros(2), requires_grad=True)
    with pytest.raises(ValueError):
        make_optimizer("lion", [param], lr=0.1)


def test_step_skips_params_without_grad():
    p1 = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
    p2 = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
    opt = SGD([p1, p2], lr=0.1)
    p1.grad = np.ones(2, dtype=np.float32)
    opt.step()
    np.testing.assert_allclose(p2.data, [1.0, 1.0])


class TestRowAdagrad:
    def test_updates_only_given_rows(self):
        table = np.ones((5, 3), dtype=np.float32)
        state = np.zeros_like(table)
        opt = RowAdagrad(lr=0.5)
        opt.update(table, state, np.array([1, 3]), np.ones((2, 3), dtype=np.float32))
        assert (table[[0, 2, 4]] == 1.0).all()
        assert (table[[1, 3]] < 1.0).all()
        assert (state[[1, 3]] > 0).all()

    def test_duplicate_rows_merge_gradients(self):
        """Duplicates must behave like one accumulated gradient (order-free)."""
        table_a = np.ones((2, 2), dtype=np.float32)
        state_a = np.zeros_like(table_a)
        opt = RowAdagrad(lr=0.1)
        grads = np.array([[1.0, 1.0], [2.0, 2.0]], dtype=np.float32)
        opt.update(table_a, state_a, np.array([0, 0]), grads)

        table_b = np.ones((2, 2), dtype=np.float32)
        state_b = np.zeros_like(table_b)
        opt.update(table_b, state_b, np.array([0]), np.array([[3.0, 3.0]], dtype=np.float32))
        np.testing.assert_allclose(table_a, table_b)
        np.testing.assert_allclose(state_a, state_b)

    def test_empty_rows_noop(self):
        table = np.ones((2, 2), dtype=np.float32)
        state = np.zeros_like(table)
        RowAdagrad(lr=0.1).update(table, state, np.empty(0, dtype=np.int64),
                                  np.empty((0, 2), dtype=np.float32))
        assert (table == 1.0).all()

    def test_adagrad_decays_effective_lr(self):
        table = np.zeros((1, 1), dtype=np.float32)
        state = np.zeros_like(table)
        opt = RowAdagrad(lr=1.0)
        deltas = []
        prev = 0.0
        for _ in range(3):
            opt.update(table, state, np.array([0]), np.ones((1, 1), dtype=np.float32))
            deltas.append(prev - float(table[0, 0]))
            prev = float(table[0, 0])
        assert deltas[0] > deltas[1] > deltas[2] > 0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            RowAdagrad(lr=-1.0)
