"""Decoder score functions and training losses."""

import numpy as np
import pytest

from repro.nn import (ClassificationHead, ComplExDecoder, DistMult, DotProduct,
                      Tensor, bce_with_logits, link_prediction_loss,
                      make_decoder, softmax_cross_entropy)


def embeddings(n, d, seed=0):
    return Tensor(np.random.default_rng(seed).normal(0, 1, (n, d)).astype(np.float32))


class TestDistMult:
    def test_score_edges_matches_manual(self):
        d = 4
        dec = DistMult(num_relations=3, dim=d)
        src, dst = embeddings(2, d, 1), embeddings(2, d, 2)
        rel = np.array([0, 2])
        scores = dec.score_edges(src, rel, dst).data
        manual = (src.data * dec.relations.data[rel] * dst.data).sum(axis=1)
        np.testing.assert_allclose(scores, manual, rtol=1e-5)

    def test_score_against_consistency(self):
        """Column j of score_against equals score_edges against candidate j."""
        d = 5
        dec = DistMult(num_relations=2, dim=d)
        src = embeddings(3, d, 3)
        rel = np.array([1, 0, 1])
        cands = embeddings(4, d, 4)
        matrix = dec.score_against(src, rel, cands).data
        for j in range(4):
            dst_j = Tensor(np.tile(cands.data[j], (3, 1)))
            col = dec.score_edges(src, rel, dst_j).data
            np.testing.assert_allclose(matrix[:, j], col, rtol=1e-4)

    def test_gradients_reach_relations(self):
        dec = DistMult(num_relations=2, dim=3)
        src = embeddings(2, 3)
        dst = embeddings(2, 3, 1)
        dec.score_edges(src, np.array([0, 1]), dst).sum().backward()
        assert dec.relations.grad is not None


class TestComplEx:
    def test_consistency_against_score_edges(self):
        d = 6
        dec = ComplExDecoder(num_relations=2, dim=d)
        src = embeddings(3, d, 5)
        rel = np.array([0, 1, 0])
        cands = embeddings(2, d, 6)
        matrix = dec.score_against(src, rel, cands).data
        for j in range(2):
            dst_j = Tensor(np.tile(cands.data[j], (3, 1)))
            col = dec.score_edges(src, rel, dst_j).data
            np.testing.assert_allclose(matrix[:, j], col, rtol=1e-4, atol=1e-5)

    def test_requires_even_dim(self):
        with pytest.raises(ValueError):
            ComplExDecoder(num_relations=2, dim=5)


class TestDotProductAndRegistry:
    def test_dot_product(self):
        dec = DotProduct()
        src = Tensor(np.array([[1.0, 0.0]], dtype=np.float32))
        dst = Tensor(np.array([[1.0, 1.0]], dtype=np.float32))
        assert float(dec.score_edges(src, np.array([0]), dst).data[0]) == 1.0

    def test_make_decoder(self):
        from repro.nn import TransE
        assert isinstance(make_decoder("distmult", 3, 4), DistMult)
        assert isinstance(make_decoder("complex", 3, 4), ComplExDecoder)
        assert isinstance(make_decoder("dot", 3, 4), DotProduct)
        assert isinstance(make_decoder("transe", 3, 4), TransE)
        with pytest.raises(ValueError):
            make_decoder("rotate", 3, 4)


class TestClassificationHead:
    def test_predict_shape(self):
        head = ClassificationHead(8, 5)
        h = embeddings(10, 8)
        assert head(h).shape == (10, 5)
        assert head.predict(h).shape == (10,)


class TestLosses:
    def test_link_prediction_loss_prefers_high_positive(self):
        pos_good = Tensor(np.array([5.0, 5.0], dtype=np.float32))
        pos_bad = Tensor(np.array([-5.0, -5.0], dtype=np.float32))
        neg = Tensor(np.zeros((2, 4), dtype=np.float32))
        assert float(link_prediction_loss(pos_good, neg).data) < \
            float(link_prediction_loss(pos_bad, neg).data)

    def test_link_prediction_loss_uniform(self):
        pos = Tensor(np.zeros(3, dtype=np.float32))
        neg = Tensor(np.zeros((3, 9), dtype=np.float32))
        np.testing.assert_allclose(link_prediction_loss(pos, neg).data,
                                   np.log(10.0), rtol=1e-5)

    def test_bce_matches_reference(self):
        logits = Tensor(np.array([0.0, 2.0, -3.0], dtype=np.float32))
        labels = np.array([1.0, 1.0, 0.0])
        loss = float(bce_with_logits(logits, labels).data)
        x = logits.data.astype(np.float64)
        ref = np.mean(np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0) - x * labels)
        np.testing.assert_allclose(loss, ref, rtol=1e-5)

    def test_bce_gradient(self):
        logits = Tensor(np.array([0.0], dtype=np.float32), requires_grad=True)
        bce_with_logits(logits, np.array([1.0])).backward()
        np.testing.assert_allclose(logits.grad, [-0.5], atol=1e-5)

    def test_softmax_ce_alias(self):
        logits = Tensor(np.zeros((1, 2), dtype=np.float32))
        np.testing.assert_allclose(softmax_cross_entropy(logits, np.array([0])).data,
                                   np.log(2.0), rtol=1e-5)
