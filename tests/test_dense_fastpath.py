"""Fast-path equivalence: allocation-lean DENSE build and the two-level index.

The perf work in ``core/dense.py`` and ``graph/csr.py`` must be *invisible*
semantically:

* :func:`build_dense` (membership-array dedup, single-pass assembly, scatter
  ``repr_map``) must produce batches bit-identical to
  :func:`build_dense_reference` (the direct Algorithm 1 transcription) under
  the same seeded generator — including stats and post-``advance`` layouts.
* :class:`PartitionedAdjacencyIndex` driven through arbitrary
  ``update_partitions`` admit/evict sequences must be sample-for-sample
  identical to a flat :class:`AdjacencyIndex` rebuilt from scratch over the
  bucket-major in-buffer subgraph.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dense import build_dense, build_dense_reference
from repro.core.sampler import DenseSampler
from repro.graph import (AdjacencyIndex, EdgeBuckets, Graph,
                         PartitionedAdjacencyIndex, PartitionScheme,
                         power_law_graph)
from repro.storage.buffer import PartitionBuffer
from repro.storage.node_store import NodeStore
from repro.storage.prefetch import PrefetchingBufferManager


def random_graph(num_nodes, num_edges, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, num_edges)
    dst = rng.integers(0, num_nodes, num_edges)
    return Graph(num_nodes=num_nodes, src=src, dst=dst)


def assert_batches_identical(a, b):
    np.testing.assert_array_equal(a.node_id_offsets, b.node_id_offsets)
    np.testing.assert_array_equal(a.node_ids, b.node_ids)
    np.testing.assert_array_equal(a.nbr_offsets, b.nbr_offsets)
    np.testing.assert_array_equal(a.nbrs, b.nbrs)
    if a.repr_map is not None or b.repr_map is not None:
        np.testing.assert_array_equal(a.repr_map, b.repr_map)
    assert a.num_layers == b.num_layers


class TestBuildDenseFastPath:
    @settings(max_examples=30, deadline=None)
    @given(num_nodes=st.integers(10, 120), num_edges=st.integers(5, 600),
           k=st.integers(1, 4), fanout=st.integers(1, 8),
           directions=st.sampled_from(["out", "in", "both"]),
           seed=st.integers(0, 1000))
    def test_bit_identical_to_reference(self, num_nodes, num_edges, k, fanout,
                                        directions, seed):
        g = random_graph(num_nodes, num_edges, seed)
        idx = AdjacencyIndex(g, directions)
        rng = np.random.default_rng(seed + 1)
        targets = rng.choice(num_nodes, size=min(8, num_nodes), replace=False)
        fanouts = [fanout] * k

        ref = build_dense_reference(targets, fanouts, idx,
                                    rng=np.random.default_rng(seed + 2))
        member = np.zeros(num_nodes, dtype=bool)
        fast = build_dense(targets, fanouts, idx,
                           rng=np.random.default_rng(seed + 2),
                           member=member)
        assert_batches_identical(ref, fast)
        assert not member.any()  # scratch restored
        # Stats must match too (they feed Table 6).
        assert ref.stats == fast.stats
        fast.validate()

        # repr_map: scatter path == sorted-search path.
        rows = np.empty(num_nodes, dtype=np.int64)
        ref.compute_repr_map()
        fast.compute_repr_map(row_scratch=rows)
        np.testing.assert_array_equal(ref.repr_map, fast.repr_map)

        # Algorithm 2: identical layouts at every advance step.
        while ref.num_deltas > 1:
            ref, fast = ref.advance(), fast.advance()
            assert_batches_identical(ref, fast)

    def test_advance_returns_views_where_offsets_allow(self):
        g = power_law_graph(200, 2000, seed=0)
        sampler = DenseSampler(g, [4, 4], rng=np.random.default_rng(0))
        batch = sampler.sample(np.arange(10))
        adv = batch.advance()
        assert np.shares_memory(adv.node_ids, batch.node_ids)
        assert np.shares_memory(adv.nbrs, batch.nbrs)
        # A delta-less advance (all shifts zero) keeps offset views too.
        empty = build_dense(np.arange(5), [3],
                            AdjacencyIndex(Graph(num_nodes=5,
                                                 src=np.empty(0, dtype=np.int64),
                                                 dst=np.empty(0, dtype=np.int64))))
        adv2 = empty.advance()
        assert np.shares_memory(adv2.node_id_offsets, empty.node_id_offsets)

    def test_sampler_batches_are_reference_identical(self):
        g = power_law_graph(500, 6000, num_relations=3, seed=2)
        idx = AdjacencyIndex(g, "both")
        sampler = DenseSampler(g, [5, 5], rng=np.random.default_rng(7), index=idx)
        targets = np.random.default_rng(0).choice(500, 64, replace=False)
        fast = sampler.sample(targets)
        ref = build_dense_reference(targets, [5, 5], idx,
                                    rng=np.random.default_rng(7))
        ref.compute_repr_map()
        assert_batches_identical(ref, fast)

    def test_without_replacement_vectorized_draw(self):
        g = power_law_graph(300, 9000, seed=4)
        idx = AdjacencyIndex(g, "both")
        nodes = np.arange(50)
        nbrs, offsets = idx.sample_one_hop(nodes, 6,
                                           rng=np.random.default_rng(3),
                                           replace=False)
        from collections import Counter
        bounds = np.concatenate([offsets, [len(nbrs)]])
        for i, node in enumerate(nodes):
            mine = Counter(nbrs[bounds[i]:bounds[i + 1]].tolist())
            # Distinct *positions*: each neighbor drawn at most as often as
            # it occurs in the full run (multi-edges occur more than once).
            run = Counter(idx.neighbors_of(int(node)).tolist())
            assert all(run[v] >= c for v, c in mine.items())


def reference_index(buckets, parts, directions):
    """Flat index over the bucket-major in-buffer subgraph (sorted parts)."""
    return AdjacencyIndex(buckets.subgraph_for_partitions(sorted(parts)),
                          directions)


class TestPartitionedIndex:
    @settings(max_examples=20, deadline=None)
    @given(num_nodes=st.integers(16, 100), num_edges=st.integers(10, 500),
           p=st.integers(2, 6), directions=st.sampled_from(["out", "in", "both"]),
           cache=st.booleans(), seed=st.integers(0, 500))
    def test_update_equals_full_rebuild(self, num_nodes, num_edges, p,
                                        directions, cache, seed):
        g = random_graph(num_nodes, num_edges, seed)
        scheme = PartitionScheme.uniform(num_nodes, p)
        buckets = EdgeBuckets(g, scheme)
        rng = np.random.default_rng(seed)

        resident = set()
        index = PartitionedAdjacencyIndex(scheme, buckets.bucket_endpoints,
                                          (), directions=directions,
                                          cache_evicted=cache)
        for _ in range(6):
            # Arbitrary admit/evict diff keeping at least one partition.
            removed = ([int(x) for x in
                        rng.choice(sorted(resident),
                                   rng.integers(0, len(resident) + 1),
                                   replace=False)] if resident else [])
            candidates = [q for q in range(p) if q not in resident]
            added = [int(x) for x in
                     rng.choice(candidates,
                                rng.integers(1 if not resident else 0,
                                             len(candidates) + 1),
                                replace=False)] if candidates else []
            if not (added or removed):
                continue
            index.update_partitions(added, removed)
            resident = (resident - set(removed)) | set(added)

            ref = reference_index(buckets, resident, directions)
            all_nodes = np.arange(num_nodes)
            np.testing.assert_array_equal(index.degrees(all_nodes),
                                          ref.degrees(all_nodes))
            for node in range(0, num_nodes, max(1, num_nodes // 7)):
                np.testing.assert_array_equal(index.neighbors_of(node),
                                              ref.neighbors_of(int(node)))
            probe = rng.choice(num_nodes, size=min(12, num_nodes), replace=False)
            for fanout, replace in ((3, True), (0, True), (2, False)):
                s = int(rng.integers(1 << 30))
                got = index.sample_one_hop(probe, fanout,
                                           rng=np.random.default_rng(s),
                                           replace=replace)
                want = ref.sample_one_hop(probe, fanout,
                                          rng=np.random.default_rng(s),
                                          replace=replace)
                np.testing.assert_array_equal(got[0], want[0])
                np.testing.assert_array_equal(got[1], want[1])

    def test_build_dense_matches_reference_over_partitioned_index(self):
        g = power_law_graph(400, 5000, seed=9)
        scheme = PartitionScheme.uniform(400, 8)
        buckets = EdgeBuckets(g, scheme)
        parts = [1, 3, 4, 6]
        two_level = PartitionedAdjacencyIndex(scheme, buckets.bucket_endpoints,
                                              parts)
        flat = reference_index(buckets, parts, "both")
        targets = np.random.default_rng(1).choice(400, 50, replace=False)
        fast = build_dense(targets, [4, 4], two_level,
                           rng=np.random.default_rng(11))
        ref = build_dense_reference(targets, [4, 4], flat,
                                    rng=np.random.default_rng(11))
        assert_batches_identical(ref, fast)

    def test_memory_bytes_matches_flat_index(self):
        g = power_law_graph(200, 3000, seed=5)
        scheme = PartitionScheme.uniform(200, 4)
        buckets = EdgeBuckets(g, scheme)
        index = PartitionedAdjacencyIndex(scheme, buckets.bucket_endpoints,
                                          range(4))
        flat = reference_index(buckets, range(4), "both")
        # Same 2x sorted-neighbor payload; the two-level form adds one local
        # offset array per bucket sub-run (2 * p^2 of them) instead of one
        # global offset array per view.
        offset_overhead = 8 * 2 * (4 * 4) * (200 // 4 + 1)
        flat_offsets = 8 * 2 * (200 + 1)
        payload = index.memory_bytes() - offset_overhead
        assert payload == flat.memory_bytes() - flat_offsets
        assert index.memory_bytes() > 0

    def test_update_validates_removals(self):
        g = random_graph(40, 100, 0)
        scheme = PartitionScheme.uniform(40, 4)
        buckets = EdgeBuckets(g, scheme)
        index = PartitionedAdjacencyIndex(scheme, buckets.bucket_endpoints, [0])
        with pytest.raises(KeyError):
            index.update_partitions([], [2])

    def test_cache_avoids_resorting_on_readmit(self):
        g = random_graph(60, 400, 3)
        scheme = PartitionScheme.uniform(60, 4)
        buckets = EdgeBuckets(g, scheme)
        index = PartitionedAdjacencyIndex(scheme, buckets.bucket_endpoints,
                                          [0, 1], cache_evicted=True)
        index.update_partitions([2], [0])
        fetches = index.bucket_fetches
        index.update_partitions([0], [2])   # 0's buckets are cached
        assert index.bucket_fetches == fetches


class TestBufferSwapListeners:
    def make(self, tmp_path, p=4, capacity=2):
        scheme = PartitionScheme.uniform(40, p)
        store = NodeStore(tmp_path / "n.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        return PartitionBuffer(store, capacity)

    def test_set_partitions_reports_diff(self, tmp_path):
        buf = self.make(tmp_path)
        events = []
        buf.add_swap_listener(lambda a, r: events.append((a, r)))
        buf.set_partitions([0, 1])
        buf.set_partitions([1, 2])
        buf.set_partitions([1, 2])   # no-op swap: no event
        assert events == [([0, 1], []), ([2], [0])]

    def test_prefetch_manager_reports_diff(self, tmp_path):
        buf = self.make(tmp_path)
        events = []
        buf.add_swap_listener(lambda a, r: events.append((a, r)))
        mgr = PrefetchingBufferManager(buf, enabled=True)
        mgr.load_step([0, 1], next_partitions=[1, 2])
        mgr.load_step([1, 2], None)
        mgr.finish()
        assert events == [([0, 1], []), ([2], [0])]

    def test_listener_keeps_sampler_in_sync(self, tmp_path):
        g = power_law_graph(40, 600, seed=8)
        scheme = PartitionScheme.uniform(40, 4)
        buckets = EdgeBuckets(g, scheme)
        buf = self.make(tmp_path)
        sampler = DenseSampler.from_partitions(scheme, buckets.bucket_endpoints,
                                               (), [3],
                                               rng=np.random.default_rng(0))
        buf.add_swap_listener(lambda a, r: sampler.update_graph(a, r))
        buf.set_partitions([0, 3])
        assert sampler.index.partitions == [0, 3]
        assert sampler.index_updates == 1
        ref = reference_index(buckets, [0, 3], "both")
        all_nodes = np.arange(40)
        np.testing.assert_array_equal(sampler.index.degrees(all_nodes),
                                      ref.degrees(all_nodes))

    def test_stateless_partition_rejects_gradients(self, tmp_path):
        from repro.nn.optim import RowAdagrad
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "n.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        buf = PartitionBuffer(store, 2, optimizer=RowAdagrad(lr=0.1))
        buf.admit(0)
        # A partition installed without optimizer state must refuse updates
        # rather than train against a stale slab slot.
        buf.admit_preloaded(1, np.zeros((10, 4), dtype=np.float32), None)
        buf.apply_gradients(np.array([0]), np.ones((1, 4), dtype=np.float32))
        with pytest.raises(RuntimeError, match="no optimizer state"):
            buf.apply_gradients(np.array([12]), np.ones((1, 4), dtype=np.float32))

    def test_update_graph_requires_partitioned_index(self):
        g = power_law_graph(30, 200, seed=0)
        sampler = DenseSampler(g, [2])
        with pytest.raises(TypeError):
            sampler.update_graph([0], [])

    def test_directions_conflict_with_prebuilt_index(self):
        g = power_law_graph(30, 200, seed=0)
        idx = AdjacencyIndex(g, "both")
        with pytest.raises(ValueError):
            DenseSampler(None, [2], directions="in", index=idx)
        assert DenseSampler(None, [2], index=idx).directions == "both"

    def test_scratch_reset_after_failed_build(self):
        g = power_law_graph(50, 400, seed=0)
        sampler = DenseSampler(g, [3], rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            sampler.sample(np.array([1, 999]))   # out-of-range target
        # Scratches must come back clean so later batches are not corrupted.
        batch = sampler.sample(np.arange(20))
        clean = DenseSampler(g, [3], rng=np.random.default_rng(0))
        # Replay: consume one failed + one good draw on the clean sampler.
        with pytest.raises(IndexError):
            clean.sample(np.array([1, 999]))
        expect = clean.sample(np.arange(20))
        assert_batches_identical(expect, batch)
        assert not sampler._member.any()
