"""Policy tests: greedy cover, BETA, COMET, bias metric, workload balance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EdgeBuckets, PartitionScheme, power_law_graph
from repro.policies import (BetaPolicy, CometPolicy, edge_permutation_bias,
                            greedy_one_swap_cover, in_memory_plan,
                            workload_balance)


class TestGreedyCover:
    def test_covers_all_pairs(self):
        sets = greedy_one_swap_cover(8, 3, rng=np.random.default_rng(0))
        covered = set()
        for s in sets:
            for a in s:
                for b in s:
                    covered.add((min(a, b), max(a, b)))
        expected = {(a, b) for a in range(8) for b in range(a, 8)}
        assert covered == expected

    def test_one_swap_between_consecutive_sets(self):
        sets = greedy_one_swap_cover(10, 4, rng=np.random.default_rng(1))
        for prev, cur in zip(sets, sets[1:]):
            assert len(set(cur) - set(prev)) == 1

    def test_near_minimal_swaps(self):
        """Lower bound from Marius: total loads >= c + (p-c) and each swap
        covers at most c-1 new pairs; the greedy should be within 2x."""
        p, c = 12, 4
        sets = greedy_one_swap_cover(p, c, rng=np.random.default_rng(2))
        total_pairs = p * (p + 1) // 2
        initial = c * (c + 1) // 2
        lower = int(np.ceil((total_pairs - initial) / (c - 1)))
        swaps = len(sets) - 1
        assert swaps <= 2 * lower

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            greedy_one_swap_cover(4, 1)
        with pytest.raises(ValueError):
            greedy_one_swap_cover(4, 5)

    @settings(max_examples=15, deadline=None)
    @given(p=st.integers(3, 14), c=st.integers(2, 6), seed=st.integers(0, 20))
    def test_property_cover(self, p, c, seed):
        c = min(c, p)
        if c < 2:
            return
        sets = greedy_one_swap_cover(p, c, rng=np.random.default_rng(seed),
                                     randomize_start=True)
        covered = {(min(a, b), max(a, b)) for s in sets for a in s for b in s}
        assert len(covered) == p * (p + 1) // 2


class TestBetaPolicy:
    def test_plan_is_valid(self):
        plan = BetaPolicy(12, 4).plan_epoch(0, np.random.default_rng(0))
        plan.validate()

    def test_greedy_immediacy(self):
        """BETA's defining property: every bucket is trained at the FIRST
        step where both partitions are co-resident."""
        plan = BetaPolicy(8, 3, randomize_start=False).plan_epoch(0, np.random.default_rng(0))
        seen_resident = set()
        for step in plan.steps:
            for (i, j) in step.buckets:
                assert (i, j) not in seen_resident
            for a in step.partitions:
                for b in step.partitions:
                    seen_resident.add((a, b))

    def test_correlated_tail_steps(self):
        """After the first step, each X_i's buckets all touch the newly
        admitted partition (Figure 4's correlation structure)."""
        plan = BetaPolicy(10, 4, randomize_start=False).plan_epoch(0, np.random.default_rng(0))
        for step in plan.steps[1:]:
            if not step.admitted or not step.buckets:
                continue
            new = set(step.admitted)
            assert all(i in new or j in new for (i, j) in step.buckets)

    def test_requires_capacity_2(self):
        with pytest.raises(ValueError):
            BetaPolicy(4, 1)


class TestCometPolicy:
    def test_plan_is_valid(self):
        plan = CometPolicy(12, 6, 4).plan_epoch(0, np.random.default_rng(0))
        plan.validate()

    def test_divisibility_checks(self):
        with pytest.raises(ValueError):
            CometPolicy(10, 4, 4)      # l does not divide p
        with pytest.raises(ValueError):
            CometPolicy(12, 6, 3)      # c not a multiple of group size
        with pytest.raises(ValueError):
            CometPolicy(12, 3, 4)      # c_l = 1 < 2

    def test_swaps_move_logical_groups(self):
        policy = CometPolicy(12, 6, 4)
        plan = policy.plan_epoch(0, np.random.default_rng(0))
        group = policy.group_size
        for step in plan.steps[1:]:
            assert len(step.admitted) in (0, group)

    def test_deferred_assignment_differs_from_greedy(self):
        """Some buckets must be processed later than their first co-residency
        (the deferral that decorrelates examples)."""
        policy = CometPolicy(12, 6, 4)
        plan = policy.plan_epoch(0, np.random.default_rng(3))
        first_seen = {}
        deferred = 0
        for idx, step in enumerate(plan.steps):
            for a in step.partitions:
                for b in step.partitions:
                    first_seen.setdefault((a, b), idx)
            for bucket in step.buckets:
                if idx > first_seen[bucket]:
                    deferred += 1
        assert deferred > 0

    def test_grouping_changes_across_epochs(self):
        policy = CometPolicy(12, 6, 4)
        policy.plan_epoch(0, np.random.default_rng(0))
        g0 = [m.tolist() for m in policy.last_grouping.members]
        policy.plan_epoch(1, np.random.default_rng(1))
        g1 = [m.tolist() for m in policy.last_grouping.members]
        assert g0 != g1


class TestBiasAndBalance:
    @pytest.fixture
    def setup(self):
        g = power_law_graph(2000, 20000, seed=3)
        scheme = PartitionScheme.uniform(g.num_nodes, 16)
        return g, EdgeBuckets(g, scheme)

    def test_comet_less_biased_than_beta(self, setup):
        """The paper's central policy claim (Fig 6a / Table 8 direction)."""
        _, eb = setup
        beta = np.mean([edge_permutation_bias(
            BetaPolicy(16, 4).plan_epoch(e, np.random.default_rng(e)), eb)
            for e in range(4)])
        comet = np.mean([edge_permutation_bias(
            CometPolicy(16, 8, 4).plan_epoch(e, np.random.default_rng(e)), eb)
            for e in range(4)])
        assert comet < beta

    def test_in_memory_plan_zero_bias(self, setup):
        _, eb = setup
        plan = in_memory_plan(16)
        plan.validate()
        assert edge_permutation_bias(plan, eb) == 0.0

    def test_bias_in_unit_interval(self, setup):
        _, eb = setup
        plan = BetaPolicy(16, 4).plan_epoch(0, np.random.default_rng(0))
        b = edge_permutation_bias(plan, eb)
        assert 0.0 <= b <= 1.0

    def test_exact_mode_runs(self, setup):
        _, eb = setup
        plan = CometPolicy(16, 8, 4).plan_epoch(0, np.random.default_rng(0))
        b = edge_permutation_bias(plan, eb, exact=True)
        assert 0.0 <= b <= 1.0

    def test_comet_balances_workload(self, setup):
        """Deferred random assignment balances |X_i| (Section 7.5)."""
        _, eb = setup
        cv_beta, counts_b = workload_balance(
            BetaPolicy(16, 4).plan_epoch(0, np.random.default_rng(0)), eb)
        cv_comet, counts_c = workload_balance(
            CometPolicy(16, 8, 4).plan_epoch(0, np.random.default_rng(0)), eb)
        assert cv_comet < cv_beta
        assert counts_b.sum() == counts_c.sum()

    def test_fewer_logical_partitions_fewer_steps(self):
        """|S| grows with l (Figure 6b, 'Number of Subgraphs'): at fixed
        c_l = 2, the schedule visits every logical pair once."""
        steps = []
        for l in (8, 16, 32):
            plan = CometPolicy(64, l, 2 * (64 // l)).plan_epoch(
                0, np.random.default_rng(0))
            steps.append(plan.num_steps)
        assert steps[0] < steps[1] < steps[2]
