"""Failure-injection and durability tests for the storage/training stack."""

import numpy as np
import pytest

from repro.graph import PartitionScheme, load_fb15k237, power_law_graph
from repro.nn import RowAdagrad
from repro.storage import (EdgeBucketStore, NodeStore, PartitionBuffer,
                           PrefetchError, PrefetchingBufferManager)
from repro.train import DiskConfig, DiskLinkPredictionTrainer, LinkPredictionConfig


class TestPrefetchWorkerFailures:
    """Regression: prefetch-thread exceptions used to die silently inside
    the daemon thread; they must surface at the next wait()/load_step/
    finish() with the original error chained."""

    def _store(self, tmp_path, boom_part=None):
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "p.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        if boom_part is not None:
            real = store.read_partition

            def faulty(part):
                if part == boom_part:
                    raise OSError(f"disk gone while reading {part}")
                return real(part)

            store.read_partition = faulty
        return store

    def test_worker_error_surfaces_on_next_load_step(self, tmp_path):
        store = self._store(tmp_path, boom_part=3)
        manager = PrefetchingBufferManager(PartitionBuffer(store, 2))
        manager.load_step([0, 1], next_partitions=[0, 3])
        with pytest.raises(PrefetchError) as info:
            manager.load_step([0, 3])
        assert isinstance(info.value.__cause__, OSError)

    def test_worker_error_surfaces_on_finish(self, tmp_path):
        """Shutdown must not swallow a dead worker either."""
        store = self._store(tmp_path, boom_part=2)
        manager = PrefetchingBufferManager(PartitionBuffer(store, 2))
        manager.load_step([0, 1], next_partitions=[2])
        with pytest.raises(PrefetchError):
            manager.finish()

    def test_error_cleared_after_surfacing(self, tmp_path):
        """One failure is reported once; the manager stays usable."""
        store = self._store(tmp_path, boom_part=3)
        manager = PrefetchingBufferManager(PartitionBuffer(store, 2))
        manager.load_step([0, 1], next_partitions=[3])
        with pytest.raises(PrefetchError):
            manager.load_step([0, 1])
        assert manager.load_step([0, 2]) == 2  # evict 1, admit 2

    def test_reset_discards_pending_error(self, tmp_path):
        """The resume path drops staged data and the moot worker error."""
        store = self._store(tmp_path, boom_part=3)
        manager = PrefetchingBufferManager(PartitionBuffer(store, 2))
        manager.load_step([0, 1], next_partitions=[3])
        manager.reset()
        assert manager.load_step([0, 2]) == 2  # evict 1, admit 2


class TestCrashConsistency:
    def test_flush_midway_makes_disk_consistent(self, tmp_path):
        """If training stops after flush(), a re-opened store sees every
        update (the trainer flushes at epoch end and after eviction)."""
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "a.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        buf = PartitionBuffer(store, 2, optimizer=RowAdagrad(lr=0.5))
        buf.set_partitions([0, 1])
        buf.apply_gradients(np.array([1, 12]), np.ones((2, 4), dtype=np.float32))
        updated = buf.gather(np.array([1, 12])).copy()
        buf.flush()
        store.flush()

        # Simulate a crash + restart: new memmap over the same file.
        reopened = np.memmap(tmp_path / "a.bin", dtype=np.float32,
                             mode="r", shape=(40, 4))
        np.testing.assert_allclose(np.array(reopened[[1, 12]]), updated)

    def test_unflushed_updates_stay_in_buffer_only(self, tmp_path):
        """Without flush/evict, disk still holds the old values (the buffer
        is the write cache, not write-through)."""
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "b.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        original = store.read_rows(np.array([5]))
        buf = PartitionBuffer(store, 2, optimizer=RowAdagrad(lr=0.5))
        buf.set_partitions([0])
        buf.apply_gradients(np.array([5]), np.ones((1, 4), dtype=np.float32))
        raw = np.memmap(tmp_path / "b.bin", dtype=np.float32, mode="r",
                        shape=(40, 4))
        np.testing.assert_allclose(np.array(raw[5]), original[0])


class TestBadInputs:
    def test_empty_edge_bucket_store(self, tmp_path):
        from repro.graph import Graph
        g = Graph(num_nodes=10, src=np.empty(0, dtype=np.int64),
                  dst=np.empty(0, dtype=np.int64))
        scheme = PartitionScheme.uniform(10, 2)
        es = EdgeBucketStore(tmp_path / "e.bin", g, scheme)
        assert es.num_edges == 0
        sub = es.subgraph_for_partitions([0, 1])
        assert sub.num_edges == 0

    def test_trainer_with_empty_step_buckets(self, tmp_path):
        """Plans can contain steps with zero assigned buckets; the trainer
        must skip them without crashing (COMET produces these)."""
        data = load_fb15k237(scale=0.03, seed=0)
        cfg = LinkPredictionConfig(embedding_dim=8, num_layers=1, fanouts=(4,),
                                   batch_size=128, num_negatives=16,
                                   num_epochs=1, eval_negatives=32,
                                   eval_max_edges=100, seed=0)
        # Small graph + many partitions: some steps will be nearly empty.
        disk = DiskConfig(workdir=tmp_path, num_partitions=16, num_logical=8,
                          buffer_capacity=4)
        result = DiskLinkPredictionTrainer(data, cfg, disk).train()
        assert np.isfinite(result.final_mrr)

    def test_single_node_batch(self):
        from repro.core import DenseSampler
        g = power_law_graph(100, 800, seed=0)
        sampler = DenseSampler(g, [5, 5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.array([7]))
        batch.validate()
        np.testing.assert_array_equal(batch.target_nodes(), [7])

    def test_all_isolated_targets(self):
        """Targets with no in-memory edges: DENSE degenerates gracefully to
        self-representations (the disk-training corner where a partition set
        holds no edges touching the batch)."""
        from repro.core import DenseSampler, GNNEncoder
        from repro.graph import Graph
        from repro.nn import Tensor
        g = Graph(num_nodes=10, src=np.array([0]), dst=np.array([1]))
        sampler = DenseSampler(g, [5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.array([5, 6, 7]))
        batch.validate()
        assert len(batch.nbrs) == 0
        enc = GNNEncoder("graphsage", [4, 4], rng=np.random.default_rng(0))
        out = enc(Tensor(np.ones((batch.num_nodes, 4), dtype=np.float32)), batch)
        assert out.shape == (3, 4)
        assert np.isfinite(out.data).all()
