"""Storage layer tests: memmap node/edge stores, partition buffer, IO stats."""

import numpy as np
import pytest

from repro.graph import PartitionScheme, power_law_graph
from repro.nn import RowAdagrad
from repro.storage import EdgeBucketStore, IOStats, NodeStore, PartitionBuffer


@pytest.fixture
def store(tmp_path):
    scheme = PartitionScheme.uniform(100, 4)
    s = NodeStore(tmp_path / "emb.bin", scheme, dim=8, learnable=True)
    s.initialize(rng=np.random.default_rng(0))
    return s


class TestIOStats:
    def test_counters(self):
        io = IOStats()
        io.record_read(100)
        io.record_read(50)
        io.record_write(30)
        assert io.bytes_read == 150 and io.num_reads == 2
        assert io.bytes_written == 30 and io.num_writes == 1
        assert io.total_bytes == 180
        assert io.smallest_read == 50

    def test_diff(self):
        io = IOStats()
        io.record_read(10)
        snap = io.snapshot()
        io.record_read(5)
        io.record_write(7)
        d = io.diff(snap)
        assert d.bytes_read == 5 and d.bytes_written == 7
        assert d.read_sizes == [5]

    def test_reset(self):
        io = IOStats()
        io.record_read(10)
        io.reset()
        assert io.total_bytes == 0 and io.smallest_read == 0


class TestNodeStore:
    def test_partition_roundtrip(self, store):
        data, state = store.read_partition(2)
        assert data.shape == (25, 8)
        data[:] = 7.0
        state[:] = 1.0
        store.write_partition(2, data, state)
        again, st2 = store.read_partition(2)
        assert (again == 7.0).all() and (st2 == 1.0).all()

    def test_partitions_independent(self, store):
        d0, s0 = store.read_partition(0)
        store.write_partition(0, np.zeros_like(d0), s0)
        d1, _ = store.read_partition(1)
        assert not (d1 == 0).all()

    def test_initialize_values(self, tmp_path):
        scheme = PartitionScheme.uniform(10, 2)
        s = NodeStore(tmp_path / "f.bin", scheme, dim=3, learnable=False)
        values = np.arange(30, dtype=np.float32).reshape(10, 3)
        s.initialize(values=values)
        np.testing.assert_array_equal(s.read_all(), values)

    def test_initialize_shape_check(self, store):
        with pytest.raises(ValueError):
            store.initialize(values=np.zeros((5, 8), dtype=np.float32))

    def test_write_shape_check(self, store):
        with pytest.raises(ValueError):
            store.write_partition(0, np.zeros((3, 8), dtype=np.float32))

    def test_io_accounting(self, store):
        before = store.stats.bytes_read
        store.read_partition(0)
        # embeddings + optimizer state, 25 rows x 8 dims x 4 bytes each
        assert store.stats.bytes_read - before == 2 * 25 * 8 * 4
        assert store.stats.partition_loads == 1

    def test_read_rows(self, store):
        rows = store.read_rows(np.array([0, 50, 99]))
        assert rows.shape == (3, 8)

    def test_persistence_across_reopen(self, tmp_path):
        scheme = PartitionScheme.uniform(10, 2)
        s = NodeStore(tmp_path / "p.bin", scheme, dim=2, learnable=False)
        s.initialize(values=np.ones((10, 2), dtype=np.float32))
        s.flush()
        raw = np.memmap(tmp_path / "p.bin", dtype=np.float32, shape=(10, 2))
        np.testing.assert_array_equal(np.array(raw), np.ones((10, 2)))


class TestEdgeBucketStore:
    def test_bucket_reads_match_partitioning(self, tmp_path):
        g = power_law_graph(60, 600, num_relations=3, seed=0)
        scheme = PartitionScheme.uniform(60, 3)
        es = EdgeBucketStore(tmp_path / "e.bin", g, scheme)
        total = 0
        for i in range(3):
            for j in range(3):
                edges = es.read_bucket(i, j)
                total += len(edges)
                if len(edges):
                    assert (scheme.partition_of(edges[:, 0]) == i).all()
                    assert (scheme.partition_of(edges[:, -1]) == j).all()
        assert total == g.num_edges

    def test_subgraph_io_accounting(self, tmp_path):
        g = power_law_graph(60, 600, seed=1)
        scheme = PartitionScheme.uniform(60, 3)
        io = IOStats()
        es = EdgeBucketStore(tmp_path / "e.bin", g, scheme, stats=io)
        before = io.bytes_read
        es.subgraph_for_partitions([0, 1])
        assert io.bytes_read > before
        mid = io.bytes_read
        es.subgraph_for_partitions([0, 1], record_io=False)
        assert io.bytes_read == mid

    def test_smallest_read_shrinks_with_more_partitions(self, tmp_path):
        """Section 6: edge-bucket size decreases quadratically in p, so the
        smallest disk read shrinks — the driver of the p = alpha4 rule."""
        g = power_law_graph(200, 4000, seed=2)
        sizes = []
        for p in (2, 8):
            io = IOStats()
            es = EdgeBucketStore(tmp_path / f"e{p}.bin",
                                 g, PartitionScheme.uniform(200, p), stats=io)
            for i in range(p):
                for j in range(p):
                    es.read_bucket(i, j)
            nonzero = [s for s in io.read_sizes if s > 0]
            sizes.append(np.mean(nonzero))
        assert sizes[1] < sizes[0]


class TestPartitionBuffer:
    def make(self, tmp_path, capacity=2):
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "b.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        return store, PartitionBuffer(store, capacity, optimizer=RowAdagrad(lr=0.5))

    def test_admit_evict_cycle(self, tmp_path):
        _, buf = self.make(tmp_path)
        buf.admit(0)
        buf.admit(1)
        assert buf.resident == [0, 1]
        with pytest.raises(RuntimeError):
            buf.admit(2)
        buf.evict(0)
        buf.admit(2)
        assert buf.resident == [1, 2]

    def test_evict_not_resident(self, tmp_path):
        _, buf = self.make(tmp_path)
        with pytest.raises(KeyError):
            buf.evict(3)

    def test_set_partitions_diffs(self, tmp_path):
        _, buf = self.make(tmp_path)
        moved = buf.set_partitions([0, 1])
        assert moved == 2
        moved = buf.set_partitions([1, 2])
        assert moved == 2  # evict 0, admit 2
        moved = buf.set_partitions([1, 2])
        assert moved == 0

    def test_capacity_enforced(self, tmp_path):
        _, buf = self.make(tmp_path)
        with pytest.raises(ValueError):
            buf.set_partitions([0, 1, 2])

    def test_gather_requires_residency(self, tmp_path):
        _, buf = self.make(tmp_path)
        buf.set_partitions([0, 1])
        rows = buf.gather(np.array([0, 15]))
        assert rows.shape == (2, 4)
        with pytest.raises(KeyError):
            buf.gather(np.array([35]))  # partition 3 not resident

    def test_updates_written_back_on_evict(self, tmp_path):
        store, buf = self.make(tmp_path)
        buf.set_partitions([0, 1])
        before = buf.gather(np.array([5]))
        buf.apply_gradients(np.array([5]), np.ones((1, 4), dtype=np.float32))
        after = buf.gather(np.array([5]))
        assert not np.allclose(before, after)
        buf.set_partitions([2, 3])   # evicts dirty partition 0
        fresh, state = store.read_partition(0)
        np.testing.assert_allclose(fresh[5], after[0])
        assert (state[5] > 0).all()  # optimizer state paged with the partition

    def test_node_mask_and_resident_nodes(self, tmp_path):
        _, buf = self.make(tmp_path)
        buf.set_partitions([1, 3])
        mask = buf.node_mask()
        assert mask[10:20].all() and mask[30:40].all()
        assert not mask[0:10].any()
        nodes = buf.resident_nodes()
        assert len(nodes) == 20

    def test_flush_without_evict(self, tmp_path):
        store, buf = self.make(tmp_path)
        buf.set_partitions([0, 1])
        buf.apply_gradients(np.array([2]), np.ones((1, 4), dtype=np.float32))
        buf.flush()
        fresh, _ = store.read_partition(0)
        np.testing.assert_allclose(fresh[2], buf.gather(np.array([2]))[0])

    def test_apply_gradients_requires_optimizer(self, tmp_path):
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "n.bin", scheme, dim=4, learnable=True)
        store.initialize(rng=np.random.default_rng(0))
        buf = PartitionBuffer(store, 2)
        buf.set_partitions([0])
        with pytest.raises(RuntimeError):
            buf.apply_gradients(np.array([0]), np.ones((1, 4), dtype=np.float32))

    def test_invalid_capacity(self, tmp_path):
        scheme = PartitionScheme.uniform(40, 4)
        store = NodeStore(tmp_path / "x.bin", scheme, dim=4)
        with pytest.raises(ValueError):
            PartitionBuffer(store, 0)
        with pytest.raises(ValueError):
            PartitionBuffer(store, 9)
