"""Tests for segment kernels, softmax/CE, dropout — the Algorithm 3 op set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, functional as F, no_grad
from tests.conftest import numeric_gradient


def random_offsets(rng, num_segments, total):
    """Random nondecreasing start offsets beginning at 0."""
    if num_segments == 0:
        return np.empty(0, dtype=np.int64)
    cuts = np.sort(rng.integers(0, total + 1, size=num_segments - 1))
    return np.concatenate([[0], cuts]).astype(np.int64)


class TestSegmentIds:
    def test_simple(self):
        ids = F.segment_ids_from_offsets(np.array([0, 2, 5]), 7)
        np.testing.assert_array_equal(ids, [0, 0, 1, 1, 1, 2, 2])

    def test_empty_middle_segment(self):
        ids = F.segment_ids_from_offsets(np.array([0, 2, 2, 3]), 4)
        np.testing.assert_array_equal(ids, [0, 0, 2, 3])

    def test_counts(self):
        counts = F.segment_counts(np.array([0, 2, 2, 3]), 4)
        np.testing.assert_array_equal(counts, [2, 0, 1, 1])


class TestSegmentSum:
    def test_matches_manual(self):
        vals = Tensor(np.arange(10, dtype=np.float32).reshape(5, 2))
        out = F.segment_sum(vals, np.array([0, 2, 3]))
        np.testing.assert_allclose(out.data, [[2, 4], [4, 5], [14, 16]])

    def test_empty_segments_are_zero(self):
        vals = Tensor(np.ones((3, 2), dtype=np.float32))
        out = F.segment_sum(vals, np.array([0, 0, 3, 3]))
        np.testing.assert_allclose(out.data, [[0, 0], [3, 3], [0, 0], [0, 0]])

    def test_no_values(self):
        out = F.segment_sum(Tensor(np.zeros((0, 4), dtype=np.float32)),
                            np.array([0, 0]), num_segments=2)
        assert out.shape == (2, 4)

    def test_gradient(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (6, 3)).astype(np.float32)
        offsets = np.array([0, 2, 2, 5])
        t = Tensor(x.copy(), requires_grad=True)
        (F.segment_sum(t, offsets) ** 2.0).sum().backward()

        def f(a):
            with no_grad():
                return float((F.segment_sum(Tensor(a), offsets) ** 2.0).sum().data)

        numeric = numeric_gradient(f, x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-2)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(0, 20), segs=st.integers(1, 6), seed=st.integers(0, 99))
    def test_property_total_preserved(self, n, segs, seed):
        """Sum over segments preserves the total sum (partition property)."""
        rng = np.random.default_rng(seed)
        vals = rng.normal(0, 1, (n, 2)).astype(np.float32)
        offsets = random_offsets(rng, segs, n)
        out = F.segment_sum(Tensor(vals), offsets)
        np.testing.assert_allclose(out.data.sum(axis=0), vals.sum(axis=0),
                                   atol=1e-3)


class TestSegmentMean:
    def test_mean_and_empty(self):
        vals = Tensor(np.array([[2.0], [4.0], [9.0]], dtype=np.float32))
        out = F.segment_mean(vals, np.array([0, 2, 3]))
        np.testing.assert_allclose(out.data, [[3.0], [9.0], [0.0]])


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        rng = np.random.default_rng(1)
        scores = Tensor(rng.normal(0, 3, 9).astype(np.float32))
        offsets = np.array([0, 4, 6])
        out = F.segment_softmax(scores, offsets)
        sums = F.segment_sum(out, offsets).data
        np.testing.assert_allclose(sums, np.ones(3), rtol=1e-5)

    def test_invariant_to_shift(self):
        scores = np.array([1.0, 2.0, 3.0, -1.0], dtype=np.float32)
        offsets = np.array([0, 2])
        a = F.segment_softmax(Tensor(scores), offsets).data
        b = F.segment_softmax(Tensor(scores + 100.0), offsets).data
        np.testing.assert_allclose(a, b, rtol=1e-4)

    def test_gradient(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 6).astype(np.float32)
        offsets = np.array([0, 3])
        w = rng.normal(0, 1, 6).astype(np.float32)
        t = Tensor(x.copy(), requires_grad=True)
        (F.segment_softmax(t, offsets) * Tensor(w)).sum().backward()

        def f(a):
            with no_grad():
                return float((F.segment_softmax(Tensor(a), offsets) * Tensor(w)).sum().data)

        numeric = numeric_gradient(f, x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-2)


class TestSoftmaxCrossEntropy:
    def test_log_softmax_normalizes(self):
        logits = Tensor(np.random.default_rng(0).normal(0, 2, (4, 5)).astype(np.float32))
        probs = np.exp(F.log_softmax(logits).data)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        np.testing.assert_allclose(loss.data, np.log(4.0), rtol=1e-5)

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, (3, 4)).astype(np.float32)
        targets = np.array([1, 0, 3])
        t = Tensor(x.copy(), requires_grad=True)
        F.cross_entropy(t, targets).backward()

        def f(a):
            with no_grad():
                return float(F.cross_entropy(Tensor(a), targets).data)

        numeric = numeric_gradient(f, x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-2)

    def test_cross_entropy_decreases_with_confidence(self):
        targets = np.array([0])
        weak = F.cross_entropy(Tensor(np.array([[1.0, 0.0]], dtype=np.float32)), targets)
        strong = F.cross_entropy(Tensor(np.array([[5.0, 0.0]], dtype=np.float32)), targets)
        assert float(strong.data) < float(weak.data)


class TestDropoutLinearEmbedding:
    def test_dropout_eval_identity(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        # Inverted dropout keeps the expectation.
        assert abs(float(out.data.mean()) - 1.0) < 0.1
        assert set(np.unique(out.data)).issubset({0.0, 2.0})

    def test_linear(self):
        x = Tensor(np.eye(2, dtype=np.float32))
        w = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        b = Tensor(np.array([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(F.linear(x, w, b).data, [[2, 3], [4, 5]])

    def test_embedding_lookup(self):
        table = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), requires_grad=True)
        out = F.embedding(table, np.array([1, 1, 3]))
        assert out.shape == (3, 3)
        out.sum().backward()
        np.testing.assert_allclose(table.grad[:, 0], [0, 2, 0, 1])
