"""Cross-module integration tests: end-to-end flows and reproducibility."""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.graph import (import_tsv, load_fb15k237, load_papers100m_mini,
                         power_law_graph, shuffle_node_ids, split_edges)
from repro.graph.datasets import LinkPredictionDataset, paper_stats
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         LinkPredictionConfig, LinkPredictionTrainer,
                         NodeClassificationConfig, NodeClassificationTrainer,
                         TripleFilter, evaluate_model, filtered_ranks)


def lp_config(**kw):
    defaults = dict(embedding_dim=16, num_layers=1, fanouts=(8,), batch_size=256,
                    num_negatives=32, num_epochs=2, eval_negatives=64,
                    eval_max_edges=300, seed=0)
    defaults.update(kw)
    return LinkPredictionConfig(**defaults)


class TestReproducibility:
    def test_same_seed_same_result(self):
        data = load_fb15k237(scale=0.05, seed=0)
        a = LinkPredictionTrainer(data, lp_config()).train()
        b = LinkPredictionTrainer(data, lp_config()).train()
        assert a.final_mrr == pytest.approx(b.final_mrr, abs=1e-9)
        assert a.epochs[0].loss == pytest.approx(b.epochs[0].loss, abs=1e-9)

    def test_different_seed_different_result(self):
        data = load_fb15k237(scale=0.05, seed=0)
        a = LinkPredictionTrainer(data, lp_config(seed=0)).train()
        b = LinkPredictionTrainer(data, lp_config(seed=1)).train()
        assert a.final_mrr != b.final_mrr

    def test_disk_training_deterministic(self, tmp_path):
        data = load_fb15k237(scale=0.05, seed=0)
        results = []
        for run in range(2):
            disk = DiskConfig(workdir=tmp_path / f"run{run}", num_partitions=8,
                              num_logical=4, buffer_capacity=4)
            results.append(DiskLinkPredictionTrainer(data, lp_config(), disk)
                           .train().final_mrr)
        assert results[0] == pytest.approx(results[1], abs=1e-9)


class TestPipelineFromRawData:
    def test_tsv_to_trained_model(self, tmp_path):
        """Full ingestion path: raw TSV -> preprocess -> split -> train."""
        from repro.graph import export_tsv
        raw = power_law_graph(400, 4000, num_relations=5, seed=0)
        path = export_tsv(raw, tmp_path / "raw.tsv")

        graph = import_tsv(path)
        graph, _ = shuffle_node_ids(graph, seed=1)
        split = split_edges(graph, rng=np.random.default_rng(2))
        data = LinkPredictionDataset(graph=graph, split=split,
                                     stats=paper_stats("fb15k-237"),
                                     embedding_dim=16)
        trainer = LinkPredictionTrainer(data, lp_config(num_epochs=3))
        before = trainer.evaluate().mrr
        assert trainer.train().final_mrr > before


class TestFilteredEvaluationEndToEnd:
    def test_filtered_mrr_not_lower_than_raw(self):
        """Filtered ranking can only improve (or preserve) each rank."""
        data = load_fb15k237(scale=0.05, seed=0)
        trainer = LinkPredictionTrainer(data, lp_config(num_epochs=3))
        trainer.train()

        # Score a small eval batch manually under both protocols.
        rng = np.random.default_rng(5)
        edges = data.split.test[:100]
        src, rel, dst = edges[:, 0], edges[:, 1], edges[:, 2]
        negs = rng.integers(0, data.graph.num_nodes, size=128, dtype=np.int64)
        from repro.core import DenseSampler
        from repro.nn import Tensor, no_grad
        sampler = DenseSampler(data.graph, [8], rng=rng)
        targets = np.unique(np.concatenate([src, dst, negs]))
        batch = sampler.sample(targets)
        with no_grad():
            h0 = Tensor(trainer.embeddings.table[batch.node_ids])
            out = trainer.model.encode(h0, batch)
            pos = trainer.model.decoder.score_edges(
                out.index_select(np.searchsorted(targets, src)), rel,
                out.index_select(np.searchsorted(targets, dst))).data
            neg = trainer.model.decoder.score_against(
                out.index_select(np.searchsorted(targets, src)), rel,
                out.index_select(np.searchsorted(targets, negs))).data

        filt = TripleFilter(data.split.train, data.split.valid, data.split.test)
        mask = filt.mask(src, rel, negs)
        from repro.train import ranks_from_scores
        raw_ranks = ranks_from_scores(pos, neg)
        f_ranks = filtered_ranks(pos, neg, mask)
        assert (f_ranks <= raw_ranks).all()
        assert mask.any()  # the filter actually fires on a dense-ish KG


class TestFullGraphConsistency:
    def test_disk_store_round_trips_training_graph(self, tmp_path):
        """After an epoch, the edge store still serves exactly the training
        edges (no loss/duplication through the bucket layout)."""
        data = load_fb15k237(scale=0.05, seed=0)
        disk = DiskConfig(workdir=tmp_path, num_partitions=8, num_logical=4,
                          buffer_capacity=4)
        trainer = DiskLinkPredictionTrainer(data, lp_config(num_epochs=1), disk)
        trainer.train()
        pairs = [(i, j) for i in range(8) for j in range(8)]
        stored = trainer.edge_store.read_buckets(pairs)
        expected = data.split.train
        # Same multiset of edges (bucket-major order differs).
        assert len(stored) == len(expected)
        stored_sorted = stored[np.lexsort(stored.T[::-1])]
        expected_sorted = expected[np.lexsort(expected.T[::-1])]
        np.testing.assert_array_equal(stored_sorted, expected_sorted)


class TestNodeClassificationIntegration:
    def test_three_layer_paper_config_shape(self):
        """The exact paper configuration (3 layers, fanouts 30/20/10) runs
        end to end on the scale model."""
        data = load_papers100m_mini(num_nodes=3000, num_edges=30000,
                                    feat_dim=32, num_classes=8, seed=0)
        cfg = NodeClassificationConfig(hidden_dim=32, num_layers=3,
                                       fanouts=(30, 20, 10), batch_size=128,
                                       num_epochs=3, seed=0)
        result = NodeClassificationTrainer(data, cfg).train()
        assert result.final_accuracy > 1.0 / data.num_classes
