"""Serving-fleet tests: protocol, routing, HTTP parity, crash, drain.

The load-bearing guarantees:

* **HTTP parity** — every endpoint's response, parsed back from JSON, is
  bit-identical to the same query against an in-process engine over the
  same snapshot (float32 -> repr -> parse -> float32 is lossless).
* **Affinity** — a request's lead node id lands on the worker owning its
  partition under the range policy.
* **Degradation** — a crashed worker turns its range into structured
  503s and flips ``/healthz`` to degraded; the other ranges keep serving.
* **Drain** — stopping the fleet answers every accepted request; nothing
  hangs or dies with a half-written response.
"""

import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import api
from repro.api.jobs import build_serving_engine
from repro.fleet import (AffinityRouter, Fleet, ProtocolError, WorkerClient,
                         WorkerUnavailable, recv_frame, send_frame)
from repro.fleet.affinity import range_assignment
from repro.graph import load_fb15k237
from repro.serve import GracefulDrain
from repro.train import DiskConfig, DiskLinkPredictionTrainer, \
    LinkPredictionConfig

LP_CFG = LinkPredictionConfig(embedding_dim=8, encoder="none",
                              decoder="distmult", batch_size=256,
                              num_negatives=16, num_epochs=1,
                              eval_negatives=16, eval_max_edges=50, seed=0)


@pytest.fixture(scope="module")
def lp_snapshot(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fleet-lp")
    data = load_fb15k237(scale=0.03, seed=0)
    disk = DiskConfig(workdir=tmp / "work", num_partitions=8, num_logical=4,
                      buffer_capacity=4)
    trainer = DiskLinkPredictionTrainer(data, LP_CFG, disk,
                                        checkpoint_dir=tmp / "ckpt")
    trainer.train()
    trainer.save_snapshot(1, 0, 1)
    return trainer.snapshots.latest()


def fleet_spec(snapshot, workdir, **fleet_fields):
    payload = {"kind": "serve-fleet",
               "serve": {"snapshot": str(snapshot)},
               "storage": {"workdir": str(workdir), "buffer": 4},
               "fleet": {"workers": 2, "max_wait_ms": 1.0, **fleet_fields}}
    return api.JobSpec.from_dict(payload).resolve()


@pytest.fixture(scope="module")
def fleet(lp_snapshot, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fleet-run")
    spec = fleet_spec(lp_snapshot, tmp / "fleet")
    f = Fleet(spec.to_dict(), tmp / "fleet")
    f.start()
    yield f
    f.stop()


@pytest.fixture(scope="module")
def oracle(lp_snapshot, tmp_path_factory):
    """An in-process engine over the same snapshot: the parity reference."""
    tmp = tmp_path_factory.mktemp("fleet-oracle")
    spec = fleet_spec(lp_snapshot, tmp / "w")
    _, _, engine = build_serving_engine(spec, tmp / "oracle")
    return engine


def post(url, path, body):
    req = urllib.request.Request(url + path, data=json.dumps(body).encode(),
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------

def test_frame_roundtrip():
    a, b = socket.socketpair()
    try:
        payload = {"op": "embed", "ids": [1, 2, 3],
                   "f": [0.1, -2.5e-8, 1.0 / 3.0]}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close()
        assert recv_frame(b) is None          # clean EOF at a boundary
    finally:
        b.close()


def test_frame_rejects_oversized_and_malformed():
    a, b = socket.socketpair()
    try:
        import struct
        a.sendall(struct.pack("!I", (64 << 20) + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(b)
        a2, b2 = socket.socketpair()
        try:
            data = b"[1, 2, 3]"               # valid JSON, not an object
            a2.sendall(struct.pack("!I", len(data)) + data)
            with pytest.raises(ProtocolError, match="object"):
                recv_frame(b2)
        finally:
            a2.close(), b2.close()
        a3, b3 = socket.socketpair()
        try:
            a3.sendall(struct.pack("!I", 10) + b"12345")
            a3.close()                        # EOF mid-frame
            with pytest.raises(WorkerUnavailable):
                recv_frame(b3)
        finally:
            b3.close()
    finally:
        a.close(), b.close()


def test_frame_float_fidelity():
    rng = np.random.default_rng(7)
    values = rng.standard_normal(256).astype(np.float32)
    a, b = socket.socketpair()
    try:
        send_frame(a, {"rows": values.tolist()})
        back = np.asarray(recv_frame(b)["rows"], dtype=np.float32)
        assert np.array_equal(back, values)
        assert back.tobytes() == values.tobytes()
    finally:
        a.close(), b.close()


# ---------------------------------------------------------------------------
# Affinity routing
# ---------------------------------------------------------------------------

def test_range_assignment_contiguous_and_covering():
    for parts, workers in [(8, 2), (7, 3), (16, 5), (3, 8)]:
        assignment = range_assignment(parts, workers)
        assert len(assignment) == parts
        assert assignment == sorted(assignment)          # contiguous
        assert set(assignment) <= set(range(workers))
    assert range_assignment(8, 1) == [0] * 8


def test_router_routes_to_partition_owner():
    boundaries = [0, 100, 200, 300, 400]
    router = AffinityRouter(boundaries, num_workers=2)
    assert router.assignment() == [0, 0, 1, 1]
    assert router.partition_of(0) == 0
    assert router.partition_of(99) == 0
    assert router.partition_of(100) == 1
    assert router.partition_of(399) == 3
    assert router.partition_of(10 ** 9) == 3             # clamped
    assert router.route(50) == 0
    assert router.route(250) == 1


def test_router_rebalance_hook():
    router = AffinityRouter([0, 10, 20, 30, 40], num_workers=2)
    router.set_assignment([1, 1, 0, 0])
    assert router.route(5) == 1
    assert router.ranges() == {0: [2, 3], 1: [0, 1]}
    with pytest.raises(ValueError, match="cover"):
        router.set_assignment([0, 1])
    with pytest.raises(ValueError, match="unknown workers"):
        router.set_assignment([0, 1, 2, 0])
    with pytest.raises(ValueError, match="policy"):
        AffinityRouter([0, 10], 1, policy="hash")


def test_random_policy_spreads_round_robin():
    router = AffinityRouter([0, 10, 20], num_workers=2, policy="random")
    hits = [router.route(0) for _ in range(10)]          # same id every time
    assert set(hits) == {0, 1}


# ---------------------------------------------------------------------------
# GracefulDrain
# ---------------------------------------------------------------------------

def test_graceful_drain_signal_sets_flag_and_runs_callbacks():
    calls = []
    with GracefulDrain(lambda: calls.append(1), exit_after=False) as drain:
        assert not drain.triggered
        os.kill(os.getpid(), signal.SIGTERM)
        assert drain.wait(5.0)
        assert calls == [1]
        drain.request_drain()                            # idempotent
        assert calls == [1]
    # handlers restored: a later SIGTERM must not re-trigger this drain
    assert signal.getsignal(signal.SIGTERM) != drain._handle


# ---------------------------------------------------------------------------
# Fleet end-to-end over HTTP
# ---------------------------------------------------------------------------

def test_embeddings_bit_identical(fleet, oracle):
    n = int(oracle.store.num_nodes)
    ids = [0, 1, n // 2, n - 1, 0]                       # duplicates kept
    status, body = post(fleet.url, "/v1/embeddings", {"ids": ids})
    assert status == 200
    served = np.asarray(body["embeddings"], dtype=np.float32)
    expected = oracle.get_embeddings(np.asarray(ids))
    assert served.tobytes() == expected.tobytes()


def test_score_bit_identical(fleet, oracle):
    n = int(oracle.store.num_nodes)
    pairs = [[0, 5], [1, n - 1], [n - 1, 3]]
    status, body = post(fleet.url, "/v1/score", {"pairs": pairs})
    assert status == 200
    served = np.asarray(body["scores"], dtype=np.float32)
    expected = oracle.score_edges(
        np.asarray([[s, 0, d] for s, d in pairs], dtype=np.int64))
    assert served.tobytes() == expected.tobytes()


def test_topk_bit_identical(fleet, oracle):
    status, body = post(fleet.url, "/v1/topk",
                        {"source": 3, "k": 5, "exclude": [3], "exact": True})
    assert status == 200
    ids, scores = oracle.topk_targets(3, 5, rel=0, exclude=[3], exact=True)
    assert body["ids"] == ids.tolist()
    served = np.asarray(body["scores"], dtype=np.float32)
    assert served.tobytes() == scores.tobytes()


def test_encode_bit_identical(fleet, oracle):
    status, body = post(fleet.url, "/v1/encode", {"ids": [2, 9]})
    assert status == 200
    served = np.asarray(body["embeddings"], dtype=np.float32)
    expected = oracle.encode_nodes(np.asarray([2, 9]))
    assert served.tobytes() == expected.tobytes()


def test_affinity_routing_lands_on_owner(fleet, oracle):
    boundaries = fleet.worker_info[0]["boundaries"]
    for node in (0, boundaries[-1] - 1, boundaries[len(boundaries) // 2]):
        status, body = post(fleet.url, "/v1/embeddings", {"ids": [int(node)]})
        assert status == 200
        owner = fleet.router.route(int(node))
        assert body["worker"] == owner


def test_malformed_requests_get_error_dtos(fleet):
    cases = [
        ("/v1/embeddings", {"ids": "nope"}, 400, "bad_request"),
        ("/v1/embeddings", {"ids": []}, 400, "bad_request"),
        ("/v1/embeddings", {"ids": [10 ** 9]}, 400, "bad_request"),
        ("/v1/score", {"pairs": [[1]]}, 400, "bad_request"),
        ("/v1/score", {"pairs": []}, 400, "bad_request"),
        ("/v1/topk", {"source": "zero", "k": 5}, 400, "bad_request"),
        ("/v1/topk", {"source": 0, "k": 0}, 400, "bad_request"),
        ("/v1/encode", {"ids": [1], "seed": "x"}, 400, "bad_request"),
        ("/v1/nope", {"ids": [1]}, 404, "not_found"),
    ]
    for path, body, want_status, want_code in cases:
        status, payload = post(fleet.url, path, body)
        assert status == want_status, (path, body, payload)
        assert payload["error"]["code"] == want_code
        assert payload["error"]["message"]
    # non-JSON body
    req = urllib.request.Request(fleet.url + "/v1/embeddings",
                                 data=b"not json")
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=30)
    assert exc_info.value.code == 400
    # GET on a POST endpoint
    status, payload = get(fleet.url, "/v1/embeddings")
    assert status == 405 and payload["error"]["code"] == "bad_request"


def test_healthz_and_statz(fleet):
    status, body = get(fleet.url, "/healthz")
    assert status == 200 and body["status"] == "ok"
    assert [w["worker"] for w in body["workers"]] == [0, 1]
    status, body = get(fleet.url, "/statz")
    assert status == 200
    assert body["router"]["policy"] == "range"
    assert len(body["workers"]) == 2
    assert any(key.startswith("http./v1/") for key in body["gateway"])


def test_worker_protocol_direct(fleet):
    """The frame protocol works without the gateway in the middle."""
    info = fleet.worker_info[0]
    with WorkerClient(fleet.host, info["port"]) as client:
        reply = client.request("health")
        assert reply["ok"] and reply["worker"] == 0
        reply = client.request("embed", ids=[0])
        assert reply["ok"] and len(reply["embeddings"]) == 1
        reply = client.request("bogus")
        assert not reply["ok"] and reply["error"]["code"] == "bad_request"


# Keep last among the module-fleet tests: it kills worker 1 for good.
def test_worker_crash_degrades_its_range(fleet):
    victim = 1
    pid = fleet.worker_info[victim]["pid"]
    os.kill(pid, signal.SIGKILL)
    fleet._procs[victim].join(timeout=10.0)
    assert not fleet._procs[victim].is_alive()
    boundaries = fleet.worker_info[0]["boundaries"]
    dead_node = int(boundaries[-1]) - 1                  # owned by worker 1
    live_node = 0                                        # owned by worker 0
    status, body = post(fleet.url, "/v1/embeddings", {"ids": [dead_node]})
    assert status == 503
    assert body["error"]["code"] == "unavailable"
    status, body = get(fleet.url, "/healthz")
    assert status == 503 and body["status"] == "degraded"
    down = [w for w in body["workers"] if not w["alive"]]
    assert [w["worker"] for w in down] == [victim]
    # the surviving range keeps serving
    status, body = post(fleet.url, "/v1/embeddings", {"ids": [live_node]})
    assert status == 200 and body["worker"] == 0
    # ... and fails fast on the dead range thereafter
    status, body = post(fleet.url, "/v1/embeddings", {"ids": [dead_node]})
    assert status == 503


# ---------------------------------------------------------------------------
# Drain: every accepted request is answered
# ---------------------------------------------------------------------------

def test_drain_answers_every_accepted_request(lp_snapshot, tmp_path):
    spec = fleet_spec(lp_snapshot, tmp_path / "fleet")
    fleet = Fleet(spec.to_dict(), tmp_path / "fleet")
    fleet.start()
    outcomes = []
    lock = threading.Lock()

    def client(seed):
        for i in range(10):
            try:
                status, body = post(fleet.url, "/v1/embeddings",
                                    {"ids": [(seed * 17 + i) % 100]})
                with lock:
                    outcomes.append(("http", status))
            except (urllib.error.URLError, ConnectionError, OSError):
                # refused after the listener closed: rejected, not lost
                with lock:
                    outcomes.append(("refused", None))

    threads = [threading.Thread(target=client, args=(s,)) for s in range(4)]
    try:
        for t in threads:
            t.start()
        while True:
            with lock:
                if len(outcomes) >= 8:
                    break
            time.sleep(0.01)
        codes = fleet.stop()
    finally:
        for t in threads:
            t.join(timeout=30.0)
        fleet.stop()
    assert all(not t.is_alive() for t in threads)
    assert len(outcomes) == 40                 # nothing hung or vanished
    answered = [s for kind, s in outcomes if kind == "http"]
    assert answered and all(s in (200, 503) for s in answered)
    assert any(s == 200 for s in answered)
    assert all(code == 0 for code in codes)    # workers drained cleanly


def test_fleet_job_runs_with_duration(lp_snapshot, tmp_path):
    """serve-fleet through the unified job API: build, serve, drain."""
    spec = fleet_spec(lp_snapshot, tmp_path / "fleet", duration=1.0)
    result = api.run(spec)
    assert result["workers"] == 2
    assert result["exitcodes"] == [0, 0]
    logs = sorted((tmp_path / "fleet").glob("worker-*/telemetry.jsonl"))
    assert logs == []                          # telemetry off by default


def test_spec_validation():
    with pytest.raises(api.JobError, match="snapshot"):
        api.JobSpec.from_dict({"kind": "serve-fleet"}).resolve()
    with pytest.raises(api.JobError, match="workers"):
        fleet_spec("x", "y", workers=0)
    with pytest.raises(api.JobError, match="affinity"):
        fleet_spec("x", "y", affinity="hash")
    with pytest.raises(api.JobError, match="port"):
        fleet_spec("x", "y", port=70000)


# ---------------------------------------------------------------------------
# `repro top` multi-log merge
# ---------------------------------------------------------------------------

def _hist(count, total, lo, hi, buckets):
    return {"count": count, "sum": total, "mean": total / count,
            "min": lo, "max": hi, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "zero": 0, "buckets": buckets}


def test_top_merges_worker_logs(tmp_path, capsys):
    from repro.cli import main
    for i, (count, reqs) in enumerate([(3, 10), (5, 32)]):
        d = tmp_path / f"worker-{i}"
        d.mkdir(parents=True)
        records = [
            {"ts": 100.0 + i, "type": "event", "event": "request",
             "payload": {}},
            {"ts": 110.0 + i, "type": "metrics", "label": "final",
             "metrics": {"serve.requests": reqs,
                         "serve.embed.latency_ms": _hist(
                             count, count * 2.0, 1.0, 3.0, {"3": count})}},
        ]
        (d / "telemetry.jsonl").write_text(
            "".join(json.dumps(r) + "\n" for r in records))
    assert main(["top", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "merged (2 logs)" in out
    assert "request x2" in out                 # events summed
    merged = out.split("merged (2 logs)")[1]
    row = next(line for line in merged.splitlines()
               if "serve.embed.latency_ms" in line)
    assert row.split()[1] == "8"               # histogram counts merged
    counter = next(line for line in merged.splitlines()
                   if "serve.requests" in line)
    assert counter.split()[1] == "42"          # counters summed
