"""Subprocess coverage of the ``repro serve`` CLI path.

The serve command was previously exercised only by the serving benchmark;
these tests drive the real entry point (``python -m repro serve``) end to
end over a decoder-only lp-disk snapshot: embedding lookups, edge scoring,
top-k ranking, the throughput probe, and the error paths (missing
snapshot, encoder snapshot without ``--dataset``).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.graph.datasets import load_freebase86m_mini
from repro.train import DiskConfig, DiskLinkPredictionTrainer, LinkPredictionConfig

REPO = Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def run_cli(*args, timeout=300):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=timeout,
                          cwd=REPO, env=_env())


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """A small decoder-only lp-disk snapshot (random table; the CLI tests
    exercise the serving path, not model quality)."""
    tmp = tmp_path_factory.mktemp("serve-cli")
    data = load_freebase86m_mini(num_nodes=2_000, num_edges=10_000, seed=0)
    config = LinkPredictionConfig(embedding_dim=16, encoder="none",
                                  num_epochs=0, seed=0)
    disk = DiskConfig(workdir=tmp / "train", num_partitions=4, num_logical=4,
                      buffer_capacity=2)
    trainer = DiskLinkPredictionTrainer(data, config, disk,
                                        checkpoint_dir=tmp / "ckpt")
    trainer.save_snapshot(0, 0, 1)
    return trainer.snapshots.latest()


def test_embed_score_topk(snapshot, tmp_path):
    result = run_cli("serve", "--snapshot", str(snapshot),
                     "--workdir", str(tmp_path / "serve"),
                     "--buffer", "2",
                     "--embed", "1,2,3",
                     "--score", "1:2", "5:0:7",
                     "--topk", "4", "5")
    assert result.returncode == 0, result.stderr
    out = result.stdout
    assert "serving lp-disk snapshot" in out
    assert out.count("node 1:") == 1 and "node 3:" in out
    assert "score(1:2) = " in out and "score(5:0:7) = " in out
    assert "top-5 targets for source 4" in out
    assert out.count("#") >= 5                      # five ranked rows
    assert "engine stats:" in out


def test_topk_excludes_source(snapshot, tmp_path):
    result = run_cli("serve", "--snapshot", str(snapshot),
                     "--workdir", str(tmp_path / "serve"),
                     "--topk", "4", "3")
    assert result.returncode == 0, result.stderr
    ranked = [line for line in result.stdout.splitlines()
              if line.strip().startswith("#")]
    assert len(ranked) == 3
    assert not any(" node 4 " in f"{line} " for line in ranked)


def test_bench_probe(snapshot, tmp_path):
    result = run_cli("serve", "--snapshot", str(snapshot),
                     "--workdir", str(tmp_path / "serve"),
                     "--bench", "200", "--mix", "random",
                     "--max-batch", "64")
    assert result.returncode == 0, result.stderr
    assert "bench: 200 random lookups" in result.stdout
    assert "QPS" in result.stdout


def test_checkpoint_root_resolves_latest(snapshot, tmp_path):
    """Passing the checkpoint root (not a snap dir) serves the latest."""
    result = run_cli("serve", "--snapshot", str(snapshot.parent),
                     "--workdir", str(tmp_path / "serve"),
                     "--embed", "0")
    assert result.returncode == 0, result.stderr
    assert "node 0:" in result.stdout


def test_missing_snapshot_is_a_clean_error(tmp_path):
    result = run_cli("serve", "--snapshot", str(tmp_path / "nowhere"),
                     "--embed", "0")
    assert result.returncode != 0
    assert "no snapshots under" in result.stderr


def test_embed_values_match_snapshot_table(snapshot, tmp_path):
    """The CLI prints the actual stored rows, not garbage."""
    archive = np.load(snapshot / "arrays.npz")
    table = archive["node_table"]
    result = run_cli("serve", "--snapshot", str(snapshot),
                     "--workdir", str(tmp_path / "serve"),
                     "--embed", "7")
    assert result.returncode == 0, result.stderr
    line = next(l for l in result.stdout.splitlines() if "node 7:" in l)
    printed = [float(x) for x in
               line.split("[")[1].split(", ...")[0].split(",")]
    assert np.allclose(printed, table[7, :6], atol=5e-5)
