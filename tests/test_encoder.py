"""Encoder tests: the DENSE forward pass against a reference implementation."""

import numpy as np
import pytest

from repro.core import DenseSampler, GNNEncoder
from repro.graph import AdjacencyIndex, power_law_graph
from repro.nn import Tensor


def reference_graphsage(batch, h0, layers):
    """Recursive reference: compute h^k for target nodes directly from the
    DENSE arrays, one node at a time (no segment kernels, no trimming)."""
    node_ids = batch.node_ids
    pos_of = {int(n): i for i, n in enumerate(node_ids)}
    start = int(batch.node_id_offsets[1])
    bounds = np.concatenate([batch.nbr_offsets, [len(batch.nbrs)]])
    nbrs_of = {}
    for row in range(start, len(node_ids)):
        seg = row - start
        nbrs_of[int(node_ids[row])] = batch.nbrs[bounds[seg]:bounds[seg + 1]]

    memo = {}

    def h(node, level):
        if level == 0:
            return h0[pos_of[node]]
        key = (node, level)
        if key in memo:
            return memo[key]
        layer = layers[level - 1]
        mine = h(node, level - 1)
        nbr_list = nbrs_of[node]
        if len(nbr_list):
            agg = np.mean([h(int(u), level - 1) for u in nbr_list], axis=0)
        else:
            agg = np.zeros_like(mine) if layer.w_nbr.data.shape[0] == mine.shape[0] else None
            agg = np.zeros(layer.w_nbr.data.shape[0], dtype=np.float32)
        out = mine @ layer.w_self.data + agg @ layer.w_nbr.data + layer.bias.data
        if layer.activation == "relu":
            out = np.maximum(out, 0)
        memo[key] = out
        return out

    k = len(layers)
    return np.stack([h(int(t), k) for t in batch.target_nodes()])


class TestEncoderCorrectness:
    @pytest.mark.parametrize("num_layers", [1, 2, 3])
    def test_matches_recursive_reference(self, num_layers):
        """The trimmed, segment-kernel forward pass (Algorithms 2+3) computes
        exactly the recursive aggregation of Section 2."""
        g = power_law_graph(120, 900, seed=1)
        rng = np.random.default_rng(0)
        sampler = DenseSampler(g, [4] * num_layers, rng=rng)
        batch = sampler.sample(np.arange(10))
        dim = 6
        enc = GNNEncoder("graphsage", [dim] * (num_layers + 1),
                         final_activation=None, rng=np.random.default_rng(1))
        h0 = rng.normal(0, 1, (batch.num_nodes, dim)).astype(np.float32)
        out = enc(Tensor(h0), batch).data
        ref = reference_graphsage(batch, h0, list(enc.layers))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_output_aligned_with_targets(self, medium_kg):
        sampler = DenseSampler(medium_kg, [5, 5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.arange(30))
        enc = GNNEncoder("graphsage", [4, 4, 4], rng=np.random.default_rng(0))
        out = enc(Tensor(np.ones((batch.num_nodes, 4), dtype=np.float32)), batch)
        assert out.shape == (30, 4)

    def test_rejects_layer_mismatch(self, medium_kg):
        sampler = DenseSampler(medium_kg, [5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.arange(10))
        enc = GNNEncoder("graphsage", [4, 4, 4])
        with pytest.raises(ValueError, match="sampled for 1 layers"):
            enc(Tensor(np.ones((batch.num_nodes, 4), dtype=np.float32)), batch)

    def test_rejects_row_mismatch(self, medium_kg):
        sampler = DenseSampler(medium_kg, [5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.arange(10))
        enc = GNNEncoder("graphsage", [4, 4])
        with pytest.raises(ValueError, match="rows"):
            enc(Tensor(np.ones((batch.num_nodes + 3, 4), dtype=np.float32)), batch)

    def test_gradients_reach_h0_and_weights(self, medium_kg):
        sampler = DenseSampler(medium_kg, [6, 6], rng=np.random.default_rng(2))
        batch = sampler.sample(np.arange(25))
        enc = GNNEncoder("gat", [5, 5, 5], rng=np.random.default_rng(3))
        h0 = Tensor(np.random.default_rng(4).normal(
            size=(batch.num_nodes, 5)).astype(np.float32), requires_grad=True)
        enc(h0, batch).sum().backward()
        assert h0.grad is not None and np.abs(h0.grad).sum() > 0
        assert all(p.grad is not None for p in enc.parameters())

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GNNEncoder("graphsage", [8])

    def test_flops_positive_and_monotone(self, medium_kg):
        sampler1 = DenseSampler(medium_kg, [5], rng=np.random.default_rng(0))
        sampler2 = DenseSampler(medium_kg, [5, 5], rng=np.random.default_rng(0))
        b1 = sampler1.sample(np.arange(50))
        b2 = sampler2.sample(np.arange(50))
        e1 = GNNEncoder("graphsage", [8, 8])
        e2 = GNNEncoder("graphsage", [8, 8, 8])
        assert 0 < e1.flops_per_batch(b1) < e2.flops_per_batch(b2)


class TestLayerwiseEncoderParity:
    def test_layerwise_encoder_runs_shared_layers(self, medium_kg):
        """The baseline path consumes the same layer modules (accuracy-parity
        harness for the sampling ablation)."""
        from repro.baselines import LayerwiseEncoder, LayerwiseSampler
        sampler = LayerwiseSampler(medium_kg, [5, 5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.arange(20))
        enc = GNNEncoder("graphsage", [4, 4, 4], rng=np.random.default_rng(1))
        lw = LayerwiseEncoder(list(enc.layers))
        h0 = Tensor(np.random.default_rng(2).normal(
            size=(len(batch.input_nodes), 4)).astype(np.float32))
        out = lw(h0, batch)
        assert out.shape == (len(batch.target_nodes), 4)
        assert np.isfinite(out.data).all()
