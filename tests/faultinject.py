"""Reusable fault-injection harness for crash-safety tests.

The production code exposes narrow test-only hooks (``fault_hook`` on
:class:`~repro.train.checkpoint.SnapshotManager` and
:class:`~repro.storage.prefetch.PrefetchingBufferManager`); this module
provides the other half: a :class:`FaultInjector` that "kills" the process
(raises :class:`SimulatedCrash`) the N-th time a chosen :class:`CrashPoint`
is hit, and :class:`FaultyStorage`, which wraps a live
:class:`~repro.storage.node_store.NodeStore` *in place* so every holder of
the store (buffer, prefetcher) sees the same faulty I/O boundaries.

A write crash is **torn**: half the partition's rows are replaced with NaNs
before the crash fires, modelling a partial write-back. Recovery code must
therefore treat the workdir memmaps as scratch and rebuild them from the
snapshot — exactly what the trainers' ``resume()`` does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage import NodeStore


class SimulatedCrash(Exception):
    """Stands in for a killed worker at an I/O boundary."""


class CrashPoint:
    """Registered crash points across the training stack."""

    # NodeStore I/O boundaries (FaultyStorage)
    NODE_READ = "node-read"                  # partition read (admit/prefetch)
    NODE_WRITE = "node-write"                # partition write-back — torn

    # PrefetchingBufferManager hooks
    SWAP_EVICTED = "swap-evicted"            # mid-swap: evicted, not admitted
    PREFETCH_STAGED = "prefetch-staged"      # staged data taken, not applied

    # SnapshotManager hooks
    SNAPSHOT_BEGIN = "snapshot-begin"        # temp dir created, nothing in it
    SNAPSHOT_PRE_RENAME = "snapshot-pre-rename"    # fully written, not visible
    SNAPSHOT_POST_RENAME = "snapshot-post-rename"  # visible, pruning pending

    # WriteAheadLog hooks (streaming durability)
    WAL_FRAME_MID = "wal-frame-mid"          # half a frame on disk — torn tail
    WAL_TRUNCATE_PRE = "wal-truncate-pre"    # meta written, segments not yet
                                             # unlinked

    # GraphDeltaLog spill hook
    SPILL_POST_WRITE = "spill-post-write"    # spill durable, WAL not truncated

    # EdgeBucketStore compaction hooks
    REWRITE_STAGED = "rewrite-staged"        # layout.next staged, bucket file
                                             # still the old bytes
    REWRITE_POST_RENAME = "rewrite-post-rename"  # new bytes committed, layout
                                                 # sidecar not yet promoted

    # Telemetry sink hook (repro.obs.sinks)
    SINK_FLUSH_MID = "sink-flush-mid"        # half a flush on disk — torn
                                             # trailing record

    ALL = (NODE_READ, NODE_WRITE, SWAP_EVICTED, PREFETCH_STAGED,
           SNAPSHOT_BEGIN, SNAPSHOT_PRE_RENAME, SNAPSHOT_POST_RENAME,
           WAL_FRAME_MID, WAL_TRUNCATE_PRE, SPILL_POST_WRITE,
           REWRITE_STAGED, REWRITE_POST_RENAME, SINK_FLUSH_MID)


class FaultInjector:
    """Raises :class:`SimulatedCrash` the ``after+1``-th time the chosen
    crash point fires; inert afterwards (a process dies only once)."""

    def __init__(self, crash_at: str, after: int = 0) -> None:
        if crash_at not in CrashPoint.ALL:
            raise ValueError(f"unknown crash point {crash_at!r}")
        self.crash_at = crash_at
        self.after = int(after)
        self.seen = 0
        self.fired = False

    def fire(self, point: str) -> None:
        if self.fired or point != self.crash_at:
            return
        self.seen += 1
        if self.seen > self.after:
            self.fired = True
            raise SimulatedCrash(
                f"simulated crash at {point} (occurrence {self.seen})")


class FaultyStorage:
    """Wraps a :class:`NodeStore` in place with crash-injecting I/O.

    Because the instance's bound methods are replaced (not a subclass or a
    copy), the buffer, prefetcher, and trainer all hit the faulty paths
    without any re-plumbing. ``uninstall()`` restores the originals.
    """

    def __init__(self, store: NodeStore, injector: FaultInjector) -> None:
        self.store = store
        self.injector = injector
        self._read = store.read_partition
        self._write = store.write_partition
        store.read_partition = self._read_hook    # type: ignore[method-assign]
        store.write_partition = self._write_hook  # type: ignore[method-assign]

    def uninstall(self) -> None:
        self.store.read_partition = self._read    # type: ignore[method-assign]
        self.store.write_partition = self._write  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _read_hook(self, part: int):
        self.injector.fire(CrashPoint.NODE_READ)
        return self._read(part)

    def _write_hook(self, part: int, data: np.ndarray,
                    state: Optional[np.ndarray] = None) -> None:
        try:
            self.injector.fire(CrashPoint.NODE_WRITE)
        except SimulatedCrash:
            torn = np.array(data)
            torn[len(torn) // 2:] = np.nan
            self._write(part, torn, state)
            raise
        self._write(part, data, state)
