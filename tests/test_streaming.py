"""Streaming subsystem tests: the streamed-vs-rebuilt equivalence property.

The contract under test (docs/streaming.md): after **any** interleaving of
edge insertions, deletions, node additions, and compactions, the live view
must answer queries, sample neighborhoods, and train **bit-identically** to
an offline preprocess of the final edge list (bucketed with the same
partition scheme, including the last-partition growth rule). A python-side
reference edge list is maintained alongside every randomized stream and the
two worlds are compared structure-for-structure.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.sampler import DenseSampler
from repro.graph.edge_list import Graph
from repro.graph.partition import PartitionScheme
from repro.serve.engine import ServingEngine
from repro.storage.edge_store import EdgeBucketStore
from repro.storage.node_store import NodeStore
from repro.stream import (Compactor, ContinualTrainer, GraphDeltaLog,
                          LiveGraph, pack_pairs)
from repro.train import LinkPredictionConfig, SnapshotManager
from repro.train.link_prediction import LinkPredictionModel

REPO = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def make_live(tmp_path, num_nodes=120, num_edges=600, p=6, dim=8,
              with_rel=False, seed=0, spill_threshold=1 << 20,
              name="live") -> LiveGraph:
    rng = np.random.default_rng(seed)
    graph = Graph(num_nodes=num_nodes,
                  src=rng.integers(0, num_nodes, num_edges),
                  dst=rng.integers(0, num_nodes, num_edges),
                  rel=rng.integers(0, 4, num_edges) if with_rel else None,
                  num_relations=4 if with_rel else 1)
    scheme = PartitionScheme.uniform(num_nodes, p)
    store = NodeStore(tmp_path / f"{name}-nodes.bin", scheme, dim,
                      learnable=True)
    store.initialize(rng=np.random.default_rng(seed + 1))
    edges = EdgeBucketStore(tmp_path / f"{name}-edges.bin", graph, scheme)
    return LiveGraph(store, edges, seed=seed + 7,
                     spill_threshold=spill_threshold)


def base_order_edges(live: LiveGraph) -> np.ndarray:
    """The base file's bucket-major edge array — the reference list's seed."""
    p = live.num_partitions
    chunks = [live.edge_store.read_bucket(i, j, record_io=False)
              for i in range(p) for j in range(p)]
    return np.concatenate(chunks, axis=0)


def apply_delete(ref: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Reference deletion semantics: remove every matching occurrence."""
    keep = np.ones(len(ref), dtype=bool)
    for row in rows:
        keep &= ~(ref == row).all(axis=1)
    return ref[keep]


def drive_random_stream(live: LiveGraph, compactor: Compactor,
                        rng: np.random.Generator, steps: int,
                        compact_prob: float = 0.15) -> np.ndarray:
    """Random ingest/compact interleaving; returns the reference final edge
    list (maintained independently of the code under test)."""
    ref = base_order_edges(live)
    width = live.width
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.50:
            n = int(rng.integers(1, 40))
            ins = np.empty((n, width), dtype=np.int64)
            ins[:, 0] = rng.integers(0, live.num_nodes, n)
            ins[:, -1] = rng.integers(0, live.num_nodes, n)
            if width == 3:
                ins[:, 1] = rng.integers(0, 4, n)
            live.insert_edges(ins)
            ref = np.concatenate([ref, ins], axis=0)
        elif roll < 0.70 and len(ref):
            n = int(rng.integers(1, 10))
            rows = ref[rng.integers(0, len(ref), n)]
            live.delete_edges(rows)
            ref = apply_delete(ref, rows)
        elif roll < 0.70 + compact_prob:
            compactor.compact()
        else:
            live.add_nodes(int(rng.integers(1, 8)))
    return ref


def rebuild_offline(tmp_path, live: LiveGraph, ref: np.ndarray,
                    name="rebuilt") -> EdgeBucketStore:
    """Offline preprocess of the final edge list under the live scheme."""
    graph = Graph(num_nodes=live.num_nodes, src=ref[:, 0], dst=ref[:, -1],
                  rel=ref[:, 1] if live.width == 3 else None,
                  num_relations=live.edge_store.num_relations)
    return EdgeBucketStore(tmp_path / f"{name}-edges.bin", graph, live.scheme)


# ---------------------------------------------------------------------------
# Delta log
# ---------------------------------------------------------------------------

class TestDeltaLog:
    def test_spill_roundtrip(self, tmp_path):
        """Spilled segments serve bucket reads identically to memory."""
        rng = np.random.default_rng(0)
        kwargs = dict(num_partitions=4, has_relations=False)
        spilly = GraphDeltaLog(spill_dir=tmp_path / "spill",
                               spill_threshold=25, **kwargs)
        memory = GraphDeltaLog(spill_dir=None, **kwargs)
        for _ in range(10):
            n = int(rng.integers(5, 20))
            src = rng.integers(0, 100, n)
            dst = rng.integers(0, 100, n)
            bi, bj = src % 4, dst % 4
            for log in (spilly, memory):
                log.append(0, src, dst, None, bi, bj)
        assert spilly.spills > 0
        for i in range(4):
            for j in range(4):
                a = spilly.events_for_bucket(i, j)
                b = memory.events_for_bucket(i, j)
                for col in ("op", "src", "dst", "seq"):
                    assert np.array_equal(a[col], b[col])

    def test_mark_compacted_forgets(self, tmp_path):
        log = GraphDeltaLog(4, spill_dir=tmp_path / "spill", spill_threshold=5)
        ids = np.arange(20)
        log.append(0, ids, ids, None, ids % 4, ids % 4)
        assert log.spills >= 1 and log.pending_events == 20
        log.mark_compacted(log.seq)
        assert log.pending_events == 0
        assert len(list((tmp_path / "spill").glob("*.npz"))) == 0
        for i in range(4):
            assert len(log.events_for_bucket(i, i)["seq"]) == 0

    def test_horizon_cannot_move_backwards(self):
        log = GraphDeltaLog(2)
        log.append(0, np.array([1]), np.array([1]), None,
                   np.array([0]), np.array([0]))
        log.mark_compacted(1)
        with pytest.raises(ValueError):
            log.mark_compacted(0)


# ---------------------------------------------------------------------------
# The equivalence property
# ---------------------------------------------------------------------------

class TestStreamedVsRebuilt:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("with_rel", [False, True])
    def test_buckets_match_offline_rebuild(self, tmp_path, seed, with_rel):
        """Property: every composed bucket equals the offline rebuild's,
        for random ingest/delete/add-node/compact interleavings."""
        live = make_live(tmp_path, with_rel=with_rel, seed=seed)
        rng = np.random.default_rng(100 + seed)
        ref = drive_random_stream(live, Compactor(live), rng, steps=40)
        rebuilt = rebuild_offline(tmp_path, live, ref)
        p = live.num_partitions
        for i in range(p):
            for j in range(p):
                assert np.array_equal(
                    live.bucket_edges(i, j, record_io=False),
                    rebuilt.read_bucket(i, j, record_io=False)), (i, j)
        assert live.num_live_edges() == len(ref)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_sampling_bit_identical(self, tmp_path, seed):
        """The partition-aware index over the live view draws the same
        neighbors as one over the rebuild, bit for bit."""
        live = make_live(tmp_path, seed=seed)
        rng = np.random.default_rng(200 + seed)
        ref = drive_random_stream(live, Compactor(live), rng, steps=30)
        rebuilt = rebuild_offline(tmp_path, live, ref)
        parts = [0, 2, 5]
        for replace in (True, False):
            s_live = DenseSampler.from_partitions(
                live.scheme, live.bucket_endpoints, parts, [5, 3],
                rng=np.random.default_rng(42))
            s_built = DenseSampler.from_partitions(
                live.scheme, rebuilt.bucket_endpoints, parts, [5, 3],
                rng=np.random.default_rng(42))
            targets = np.unique(rng.integers(0, live.num_nodes, 40))
            nbrs_a, off_a = s_live.index.sample_one_hop(
                targets, 4, np.random.default_rng(7), replace=replace)
            nbrs_b, off_b = s_built.index.sample_one_hop(
                targets, 4, np.random.default_rng(7), replace=replace)
            assert np.array_equal(nbrs_a, nbrs_b)
            assert np.array_equal(off_a, off_b)
            a, b = s_live.sample(targets), s_built.sample(targets)
            assert np.array_equal(a.node_ids, b.node_ids)

    def test_compaction_preserves_view_and_updates_fingerprints(self, tmp_path):
        live = make_live(tmp_path, seed=3)
        rng = np.random.default_rng(33)
        drive_random_stream(live, Compactor(live), rng, steps=15,
                            compact_prob=0.0)
        p = live.num_partitions
        pre = [live.bucket_edges(i, j, record_io=False)
               for i in range(p) for j in range(p)]
        fp_before = live.edge_store.fingerprint()
        report = Compactor(live).compact()
        post = [live.bucket_edges(i, j, record_io=False)
                for i in range(p) for j in range(p)]
        for a, b in zip(pre, post):
            assert np.array_equal(a, b)
        assert live.log.pending_events == 0
        assert report.merged_events > 0
        assert report.fingerprints["edge"] != fp_before
        # Atomicity: no staging debris next to the bucket file.
        assert not live.edge_store.path.with_suffix(
            live.edge_store.path.suffix + ".tmp").exists()

    def test_growth_drops_stale_evicted_bucket_cache(self, tmp_path):
        """cache_evicted=True: sub-runs of the last partition cached across
        an eviction are sized by the old partition — growth must drop them
        or readmission reuses stale offset tables."""
        from repro.graph.csr import PartitionedAdjacencyIndex
        live = make_live(tmp_path, seed=8)
        last = live.num_partitions - 1
        index = PartitionedAdjacencyIndex(live.scheme, live.bucket_endpoints,
                                          [0, last], cache_evicted=True)
        live.add_growth_listener(index.extend_nodes)
        live.add_bucket_listener(index.refresh_buckets)
        index.update_partitions([1], [last])   # evict last; cache keeps it
        ids = live.add_nodes(9)                # last partition grows
        index.update_partitions([last], [1])   # readmit from (dropped) cache
        fresh = PartitionedAdjacencyIndex(live.scheme, live.bucket_endpoints,
                                          [0, last])
        assert np.array_equal(index._total_deg, fresh._total_deg)
        for node in ids:
            assert np.array_equal(index.neighbors_of(int(node)),
                                  fresh.neighbors_of(int(node)))

    def test_index_follows_stream_while_resident(self, tmp_path):
        """An index attached before ingest (resident partitions) sees the
        same virtual runs as one built fresh afterwards."""
        live = make_live(tmp_path, seed=4)
        parts = [1, 3, 4]
        attached = DenseSampler.from_partitions(
            live.scheme, live.bucket_endpoints, parts, [4],
            rng=np.random.default_rng(0))
        live.add_bucket_listener(attached.index.refresh_buckets)
        live.add_growth_listener(attached.index.extend_nodes)
        rng = np.random.default_rng(44)
        drive_random_stream(live, Compactor(live), rng, steps=25)
        fresh = DenseSampler.from_partitions(
            live.scheme, live.bucket_endpoints, parts, [4],
            rng=np.random.default_rng(0))
        for node in range(live.num_nodes):
            assert np.array_equal(attached.index.neighbors_of(node),
                                  fresh.index.neighbors_of(node)), node
        assert np.array_equal(attached.index._total_deg,
                              fresh.index._total_deg)


# ---------------------------------------------------------------------------
# Deletion / growth semantics
# ---------------------------------------------------------------------------

class TestSemantics:
    def test_delete_removes_all_occurrences_and_reinsert_readds(self, tmp_path):
        live = make_live(tmp_path, num_edges=0, seed=9)
        edge = np.array([[5, 17]])
        live.insert_edges(np.repeat(edge, 3, axis=0))   # three copies
        i, j = live.scheme.partition_of(np.array([5, 17]))
        assert len(live.bucket_edges(int(i), int(j), record_io=False)) == 3
        live.delete_edges(edge)
        assert len(live.bucket_edges(int(i), int(j), record_io=False)) == 0
        live.insert_edges(edge)                          # re-add after delete
        assert len(live.bucket_edges(int(i), int(j), record_io=False)) == 1

    def test_new_node_rows_are_batching_independent(self, tmp_path):
        a = make_live(tmp_path, seed=2, name="a")
        b = make_live(tmp_path, seed=2, name="b")
        a.add_nodes(5)
        a.add_nodes(3)
        b.add_nodes(8)
        assert a.num_nodes == b.num_nodes
        assert np.array_equal(a.node_store.read_all(), b.node_store.read_all())
        assert np.array_equal(a.scheme.boundaries, b.scheme.boundaries)

    def test_edge_to_unknown_node_rejected(self, tmp_path):
        live = make_live(tmp_path, seed=1)
        with pytest.raises(ValueError, match="node ID space"):
            live.insert_edges(np.array([[0, live.num_nodes]]))
        ids = live.add_nodes(1)
        live.insert_edges(np.array([[0, ids[0]]]))       # now legal

    def test_buffer_refresh_preserves_dirty_updates_across_growth(self, tmp_path):
        from repro.nn.optim import RowAdagrad
        from repro.storage.buffer import PartitionBuffer
        live = make_live(tmp_path, seed=6)
        buf = PartitionBuffer(live.node_store, 2, optimizer=RowAdagrad(lr=0.5))
        live.add_growth_listener(lambda scheme: buf.refresh_from_store())
        last = live.num_partitions - 1
        buf.set_partitions([0, last])
        rows = live.scheme.partition_nodes(last)[:4]
        grads = np.ones((4, live.node_store.dim), dtype=np.float32)
        before = buf.gather(rows).copy()
        buf.apply_gradients(rows, grads)
        updated = buf.gather(rows).copy()
        assert not np.array_equal(before, updated)
        ids = live.add_nodes(10)                 # grows the dirty partition
        assert buf.resident == [0, last]
        assert np.array_equal(buf.gather(rows), updated)   # update survived
        assert buf.gather(ids).shape == (10, live.node_store.dim)


# ---------------------------------------------------------------------------
# Serving over the live view
# ---------------------------------------------------------------------------

class TestLiveServing:
    def test_engine_queries_match_offline_engine(self, tmp_path):
        live = make_live(tmp_path, seed=11)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        rng = np.random.default_rng(55)
        ref = drive_random_stream(live, Compactor(live), rng, steps=25)
        rebuilt = rebuild_offline(tmp_path, live, ref)

        # Offline engine: same table served from a separate read-only store.
        scheme = live.scheme
        store2 = NodeStore(tmp_path / "offline-nodes.bin", scheme,
                           live.node_store.dim, learnable=False)
        store2.initialize(values=live.node_store.read_all())
        offline = ServingEngine(model, store2, buffer_capacity=3,
                                edge_source=rebuilt.bucket_endpoints)

        ids = rng.integers(0, live.num_nodes, 50)
        assert np.array_equal(engine.get_embeddings(ids),
                              offline.get_embeddings(ids))
        pairs = np.stack([rng.integers(0, live.num_nodes, 30),
                          rng.integers(0, live.num_nodes, 30)], axis=1)
        assert np.array_equal(engine.score_edges(pairs),
                              offline.score_edges(pairs))
        ids_a, sc_a = engine.topk_targets(7, 5)
        ids_b, sc_b = offline.topk_targets(7, 5)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(sc_a, sc_b)

    def test_encode_on_read_matches_offline_engine(self, tmp_path):
        live = make_live(tmp_path, num_nodes=80, num_edges=400, p=4, seed=12)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="graphsage",
                                   num_layers=1, fanouts=(4,), seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=2,
                                         fanouts=cfg.fanouts)
        rng = np.random.default_rng(66)
        ref = drive_random_stream(live, Compactor(live), rng, steps=15)
        rebuilt = rebuild_offline(tmp_path, live, ref)
        store2 = NodeStore(tmp_path / "offline-nodes.bin", live.scheme,
                           live.node_store.dim, learnable=False)
        store2.initialize(values=live.node_store.read_all())
        offline = ServingEngine(model, store2, buffer_capacity=2,
                                edge_source=rebuilt.bucket_endpoints,
                                fanouts=cfg.fanouts)
        ids = rng.integers(0, live.num_nodes, 20)
        assert np.array_equal(engine.encode_nodes(ids, seed=9),
                              offline.encode_nodes(ids, seed=9))

    def test_concurrent_ingest_and_batched_queries(self, tmp_path):
        """Ingest/compact/grow on one thread while a RequestBatcher worker
        serves queries: the shared live lock must keep every result
        well-formed (no torn scheme/buffer views, no spurious errors)."""
        import threading
        from repro.serve.batcher import RequestBatcher
        live = make_live(tmp_path, num_nodes=240, num_edges=1200, p=6,
                         seed=14)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        errors = []

        def mutate():
            rng = np.random.default_rng(7)
            try:
                for step in range(30):
                    ins = np.stack([rng.integers(0, live.num_nodes, 40),
                                    rng.integers(0, live.num_nodes, 40)],
                                   axis=1)
                    live.insert_edges(ins)
                    if step % 7 == 3:
                        live.add_nodes(5)
                    if step % 10 == 9:
                        Compactor(live).compact()
            except Exception as exc:       # pragma: no cover - failure path
                errors.append(exc)

        with RequestBatcher(engine, max_batch=8, max_wait_ms=1.0) as batcher:
            writer = threading.Thread(target=mutate)
            writer.start()
            while writer.is_alive():
                rows = batcher.get_embeddings(np.arange(0, 200, 5))
                assert rows.shape == (40, live.node_store.dim)
                assert np.isfinite(rows).all()
                ids, scores = batcher.topk_targets(3, 5)
                assert len(ids) == 5
                assert (ids < live.num_nodes).all()
            writer.join()
        assert not errors

    def test_new_nodes_queryable_immediately(self, tmp_path):
        live = make_live(tmp_path, seed=13)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        engine.get_embeddings(np.arange(40))             # warm the buffer
        ids = live.add_nodes(6)
        rows = engine.get_embeddings(ids)
        scale = 1.0 / live.node_store.dim
        for k, node in enumerate(ids):
            expected = np.random.default_rng(
                [live.seed, int(node)]).uniform(-scale, scale,
                                                live.node_store.dim)
            assert np.allclose(rows[k], expected.astype(np.float32))


# ---------------------------------------------------------------------------
# Batched multi-source top-k (satellite)
# ---------------------------------------------------------------------------

class TestBatchedTopK:
    def _engine(self, tmp_path, seed=21):
        live = make_live(tmp_path, seed=seed)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        return ServingEngine.over_live(live, model, buffer_capacity=3)

    def test_matches_per_source_queries(self, tmp_path):
        engine = self._engine(tmp_path)
        srcs = [3, 50, 99, 117]
        ids_b, sc_b = engine.topk_targets_batch(srcs, 6, exclude=srcs)
        assert ids_b.shape == sc_b.shape == (4, 6)
        for row, src in enumerate(srcs):
            ids_1, sc_1 = engine.topk_targets(src, 6, exclude=srcs)
            assert np.array_equal(ids_b[row], ids_1)
            assert np.allclose(sc_b[row], sc_1, rtol=1e-5)

    def test_one_sweep_for_many_sources(self, tmp_path):
        srcs = [1, 40, 80, 110]
        batch_engine = self._engine(tmp_path / "batch")
        batch_engine.topk_targets_batch(srcs, 5)
        batch_swaps = batch_engine.stats.swaps
        loop_engine = self._engine(tmp_path / "loop")
        for src in srcs:
            loop_engine.topk_targets(src, 5)
        # One shared sweep (plus the source gathers) vs one sweep per query.
        p = batch_engine.scheme.num_partitions
        assert batch_swaps <= p + batch_engine.buffer.capacity
        assert batch_swaps < loop_engine.stats.swaps

    def test_through_request_batcher(self, tmp_path):
        from repro.serve.batcher import RequestBatcher
        engine = self._engine(tmp_path)
        with RequestBatcher(engine, max_batch=8, max_wait_ms=20.0) as batcher:
            requests = [batcher.submit(
                "topk", np.array([s, 0, 5], dtype=np.int64))
                for s in (2, 30, 60)]
            results = [r.wait() for r in requests]
        for (ids, scores), src in zip(results, (2, 30, 60)):
            ids_1, sc_1 = engine.topk_targets(src, 5)
            assert np.array_equal(ids, ids_1)
            assert np.allclose(scores, sc_1, rtol=1e-5)

    def test_blocking_helper(self, tmp_path):
        from repro.serve.batcher import RequestBatcher
        engine = self._engine(tmp_path)
        with RequestBatcher(engine, max_batch=4, max_wait_ms=1.0) as batcher:
            ids, scores = batcher.topk_targets(11, 4)
        assert len(ids) == len(scores) == 4


# ---------------------------------------------------------------------------
# Continual refresh
# ---------------------------------------------------------------------------

class TestContinualTrainer:
    CFG = dict(embedding_dim=8, encoder="none", batch_size=64,
               num_negatives=16, seed=3)

    def test_refresh_bit_identical_to_offline(self, tmp_path):
        """A refresh over the streamed graph equals the same refresh over
        an offline rebuild of the final edge list, bit for bit."""
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=30, name="stream")
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        rng = np.random.default_rng(77)
        ref = drive_random_stream(live, Compactor(live), rng, steps=20)

        # Offline world: rebuilt stores seeded with the streamed table.
        rebuilt = rebuild_offline(tmp_path, live, ref)
        store2 = NodeStore(tmp_path / "off-nodes.bin", live.scheme,
                           live.node_store.dim, learnable=True)
        store2.initialize(values=live.node_store.read_all())
        store2._state[:] = live.node_store.read_all_state()
        off_live = LiveGraph(store2, rebuilt, seed=live.seed)
        off_trainer = ContinualTrainer(off_live, cfg, buffer_capacity=3)
        # Align: same model/optimizer/rng state on both sides.
        off_trainer.model.load_state_dict(trainer.model.state_dict())
        off_trainer.rng.bit_generator.state = trainer.rng.bit_generator.state

        pairs = [(0, 0), (1, 2), (3, 3), (4, 5), (2, 1)]
        trainer.refresh(pairs=pairs)
        off_trainer.refresh(pairs=pairs)
        trainer.buffer.flush()
        off_trainer.buffer.flush()
        assert np.array_equal(live.node_store.read_all(),
                              store2.read_all())
        assert np.array_equal(live.node_store.read_all_state(),
                              store2.read_all_state())
        sd_a, sd_b = trainer.model.state_dict(), off_trainer.model.state_dict()
        assert set(sd_a) == set(sd_b)
        for key in sd_a:
            assert np.array_equal(sd_a[key], sd_b[key]), key

    def test_refresh_covers_touched_buckets_across_compaction(self, tmp_path):
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=31)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        rng = np.random.default_rng(88)
        ins = np.stack([rng.integers(0, live.num_nodes, 100),
                        rng.integers(0, live.num_nodes, 100)], axis=1)
        live.insert_edges(ins)
        touched = set(trainer._pending_pairs)
        assert touched
        Compactor(live).compact()                 # log forgets; trainer must not
        assert trainer._pending_pairs == touched
        record = trainer.refresh()
        assert record.num_batches > 0
        assert not trainer._pending_pairs

    def test_refresh_updates_are_served_immediately(self, tmp_path):
        """A serving engine over the same live graph must see post-refresh
        embeddings: refresh flushes and the engine's buffer re-reads the
        retrained partitions."""
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=34)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        engine = ServingEngine.over_live(live, trainer.model,
                                         buffer_capacity=3)
        probe = np.arange(0, live.num_nodes, 7)
        before = engine.get_embeddings(probe).copy()   # warm + snapshot
        rng = np.random.default_rng(101)
        ins = np.stack([rng.integers(0, live.num_nodes, 200),
                        rng.integers(0, live.num_nodes, 200)], axis=1)
        live.insert_edges(ins)
        record = trainer.refresh()
        assert record.num_batches > 0
        served = engine.get_embeddings(probe)
        assert not np.array_equal(served, before)      # training moved rows
        assert np.array_equal(served, live.node_store.read_all()[probe])

    def test_explicit_pairs_refresh_keeps_cursor_and_pending(self, tmp_path):
        """refresh(pairs=[A]) must not record untouched buckets as trained:
        the seq cursor and the pending accumulator stay put."""
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=35)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        rng = np.random.default_rng(102)
        ins = np.stack([rng.integers(0, live.num_nodes, 80),
                        rng.integers(0, live.num_nodes, 80)], axis=1)
        live.insert_edges(ins)
        pending_before = set(trainer._pending_pairs)
        cursor_before = trainer.refreshed_seq
        trainer.refresh(pairs=[sorted(pending_before)[0]])
        assert trainer.refreshed_seq == cursor_before
        assert trainer._pending_pairs == pending_before
        trainer.refresh()                              # full pass advances
        assert trainer.refreshed_seq == live.log.seq
        assert not trainer._pending_pairs

    def test_snapshot_records_log_position_and_resumes(self, tmp_path):
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=32)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3,
                                   checkpoint_dir=tmp_path / "ckpt")
        rng = np.random.default_rng(99)
        ins = np.stack([rng.integers(0, live.num_nodes, 50),
                        rng.integers(0, live.num_nodes, 50)], axis=1)
        live.insert_edges(ins)
        Compactor(live).compact()
        trainer.refresh()
        path = trainer.save_snapshot()     # flushes the buffer first
        table_at_snap = live.node_store.read_all()
        assert path.is_dir()
        # Damage the table, then resume: state comes back from the snapshot
        # and the recorded stream position tells the caller what to replay.
        live.node_store._table[:] = -1.0
        meta = trainer.resume()
        assert np.array_equal(live.node_store.read_all(), table_at_snap)
        assert meta["stream"]["seq"] == live.log.seq
        assert meta["stream"]["compacted_seq"] == live.log.compacted_seq
        assert meta["stream"]["refreshed_seq"] == trainer.refreshed_seq
        # The bucket listener must keep feeding the accumulator after a
        # resume (resume replaces the contents, not the subscribed set).
        ins2 = np.stack([rng.integers(0, live.num_nodes, 20),
                         rng.integers(0, live.num_nodes, 20)], axis=1)
        live.insert_edges(ins2)
        assert trainer._pending_pairs

    def test_reopened_stores_match_originals(self, tmp_path):
        """NodeStore.open / EdgeBucketStore.open reattach to a compacted,
        grown workdir bit-for-bit (the CLI --resume-from path)."""
        live = make_live(tmp_path, seed=36, with_rel=True)
        rng = np.random.default_rng(103)
        drive_random_stream(live, Compactor(live), rng, steps=15)
        Compactor(live).compact()
        live.node_store.flush()
        node2 = NodeStore.open(live.node_store.path, live.scheme,
                               live.node_store.dim, learnable=True)
        edge2 = EdgeBucketStore.open(live.edge_store.path, live.scheme)
        assert np.array_equal(node2.read_all(), live.node_store.read_all())
        assert edge2.fingerprint() == live.edge_store.fingerprint()
        assert node2.fingerprint() == live.node_store.fingerprint()
        p = live.num_partitions
        for i in range(p):
            for j in range(p):
                assert np.array_equal(
                    edge2.read_bucket(i, j, record_io=False),
                    live.edge_store.read_bucket(i, j, record_io=False))

    def test_pack_pairs_covers_every_pair_within_capacity(self):
        rng = np.random.default_rng(5)
        pairs = {(int(i), int(j)) for i, j in rng.integers(0, 10, (30, 2))}
        for capacity in (2, 3, 5):
            groups = pack_pairs(sorted(pairs), capacity)
            seen = [pair for _, batch in groups for pair in batch]
            assert sorted(seen) == sorted(pairs)       # exactly once each
            for parts, batch in groups:
                assert len(parts) <= capacity
                assert all(i in parts and j in parts for i, j in batch)
        with pytest.raises(ValueError):
            pack_pairs([(0, 1)], 1)


# ---------------------------------------------------------------------------
# Compressed snapshots (satellite)
# ---------------------------------------------------------------------------

class TestCompressedSnapshots:
    def test_roundtrip_bit_identical_and_smaller(self, tmp_path):
        rng = np.random.default_rng(0)
        # Highly compressible payload (zeros + repeats) to make the size
        # comparison robust.
        arrays = {"table": rng.uniform(size=(400, 16)).astype(np.float32),
                  "state": np.zeros((400, 16), dtype=np.float32),
                  "cursor": np.arange(1000)}
        meta = {"trainer": "test", "epoch": 1}
        plain = SnapshotManager(tmp_path / "plain")
        packed = SnapshotManager(tmp_path / "packed", compress=True)
        p1 = plain.save(1, meta, arrays)
        p2 = packed.save(1, meta, arrays)
        size1 = (p1 / "arrays.npz").stat().st_size
        size2 = (p2 / "arrays.npz").stat().st_size
        assert size2 < size1
        meta2, arrays2 = packed.load()
        assert meta2 == meta
        for name in arrays:
            assert np.array_equal(arrays[name], arrays2[name])

    def test_formats_interchangeable(self, tmp_path):
        """A manager can load snapshots written with either setting."""
        arrays = {"x": np.arange(100, dtype=np.float32)}
        SnapshotManager(tmp_path / "r", compress=True).save(1, {"a": 1}, arrays)
        meta, loaded = SnapshotManager(tmp_path / "r").load()
        assert meta == {"a": 1}
        assert np.array_equal(loaded["x"], arrays["x"])

    def test_trainer_resume_from_compressed_snapshot(self, tmp_path):
        from repro.graph.datasets import load_fb15k237
        from repro.train import LinkPredictionTrainer
        data = load_fb15k237(scale=0.02)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none",
                                   num_epochs=2, batch_size=256,
                                   num_negatives=8, seed=0)
        kwargs = dict(checkpoint_dir=tmp_path / "c", checkpoint_every=1)
        one = LinkPredictionTrainer(data, cfg, checkpoint_compress=True,
                                    **kwargs)
        one.train()
        two = LinkPredictionTrainer(data, cfg, **kwargs)
        two.resume()                       # plain manager reads compressed
        assert np.array_equal(one.embeddings.table, two.embeddings.table)


# ---------------------------------------------------------------------------
# CLI driver (subprocess)
# ---------------------------------------------------------------------------

class TestStreamCLI:
    def test_driver_with_verify(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "stream", "--scale", "0.02",
             "--partitions", "4", "--buffer", "2", "--dim", "8",
             "--events", "600", "--event-batch", "200",
             "--compact-every", "300", "--refresh", "--verify",
             "--workdir", str(tmp_path / "wd")],
            capture_output=True, text=True, timeout=300,
            cwd=REPO, env=_cli_env())
        assert result.returncode == 0, result.stderr
        assert "verify OK" in result.stdout
        assert "compacted" in result.stdout
        assert "stream stats:" in result.stdout

    def test_resume_from_stream_snapshot(self, tmp_path):
        """The CLI can resume the snapshots it writes: the workdir's
        compacted, grown stores are reopened, not rebuilt."""
        base = [sys.executable, "-m", "repro", "stream", "--scale", "0.02",
                "--partitions", "4", "--buffer", "2", "--dim", "8",
                "--event-batch", "200", "--compact-every", "300",
                "--refresh", "--workdir", str(tmp_path / "wd"),
                "--checkpoint-dir", str(tmp_path / "ck")]
        first = subprocess.run(base + ["--events", "600",
                                       "--checkpoint-every", "1"],
                               capture_output=True, text=True, timeout=300,
                               cwd=REPO, env=_cli_env())
        assert first.returncode == 0, first.stderr
        second = subprocess.run(
            base + ["--events", "300", "--verify",
                    "--resume-from", str(tmp_path / "ck")],
            capture_output=True, text=True, timeout=300,
            cwd=REPO, env=_cli_env())
        assert second.returncode == 0, second.stderr
        assert "resumed at stream position" in second.stdout
        assert "verify OK" in second.stdout


def _cli_env():
    import os
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env
