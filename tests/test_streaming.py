"""Streaming subsystem tests: the streamed-vs-rebuilt equivalence property.

The contract under test (docs/streaming.md): after **any** interleaving of
edge insertions, deletions, node additions, and compactions, the live view
must answer queries, sample neighborhoods, and train **bit-identically** to
an offline preprocess of the final edge list (bucketed with the same
partition scheme, including the last-partition growth rule). A python-side
reference edge list is maintained alongside every randomized stream and the
two worlds are compared structure-for-structure.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.sampler import DenseSampler
from repro.graph.edge_list import Graph
from repro.graph.partition import PartitionScheme
from repro.serve.engine import ServingEngine
from repro.storage.edge_store import EdgeBucketStore
from repro.storage.node_store import NodeStore
from repro.stream import (BackgroundCompactor, Compactor, ContinualTrainer,
                          GraphDeltaLog, LiveGraph, SharedExclusiveLock,
                          StripedLock, VersionCounter, WriteAheadLog,
                          pack_pairs)
from tests.faultinject import CrashPoint, FaultInjector, SimulatedCrash
from repro.train import LinkPredictionConfig, SnapshotManager
from repro.train.link_prediction import LinkPredictionModel

REPO = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def make_live(tmp_path, num_nodes=120, num_edges=600, p=6, dim=8,
              with_rel=False, seed=0, spill_threshold=1 << 20,
              name="live", wal=False, fsync_every=1,
              lock_stripes=8, wal_segment_bytes=4 << 20) -> LiveGraph:
    rng = np.random.default_rng(seed)
    graph = Graph(num_nodes=num_nodes,
                  src=rng.integers(0, num_nodes, num_edges),
                  dst=rng.integers(0, num_nodes, num_edges),
                  rel=rng.integers(0, 4, num_edges) if with_rel else None,
                  num_relations=4 if with_rel else 1)
    scheme = PartitionScheme.uniform(num_nodes, p)
    store = NodeStore(tmp_path / f"{name}-nodes.bin", scheme, dim,
                      learnable=True)
    store.initialize(rng=np.random.default_rng(seed + 1))
    edges = EdgeBucketStore(tmp_path / f"{name}-edges.bin", graph, scheme)
    return LiveGraph(store, edges, seed=seed + 7,
                     spill_threshold=spill_threshold,
                     wal_dir=tmp_path / f"{name}-wal" if wal else None,
                     fsync_every=fsync_every, lock_stripes=lock_stripes,
                     wal_segment_bytes=wal_segment_bytes)


def recover_live(tmp_path, base_nodes, p=6, dim=8, seed=0,
                 spill_threshold=1 << 20, name="live") -> LiveGraph:
    """The crash-recovery composition (mirrors StreamJob's build): reattach
    the durable stores at the *acknowledged* node count, restore the delta
    log from spills + WAL, replay the suffix."""
    wal_dir = tmp_path / f"{name}-wal"
    recovery = WriteAheadLog.scan(wal_dir)
    acked = max(base_nodes, recovery.num_nodes, recovery.max_nodes_recorded)
    nodes_path = tmp_path / f"{name}-nodes.bin"
    file_rows = nodes_path.stat().st_size // (4 * dim)
    attach = min(acked, file_rows)
    scheme = PartitionScheme.uniform(base_nodes, p).extended(
        attach - base_nodes)
    store = NodeStore.open(nodes_path, scheme, dim, learnable=True,
                           truncate=True)
    edges = EdgeBucketStore.open(tmp_path / f"{name}-edges.bin", scheme)
    live = LiveGraph(store, edges, seed=seed + 7,
                     spill_threshold=spill_threshold)
    frames = live.log.restore(edges.compacted_seq, recovery, wal_dir=wal_dir)
    live.replay_wal(frames)
    return live


def base_order_edges(live: LiveGraph) -> np.ndarray:
    """The base file's bucket-major edge array — the reference list's seed."""
    p = live.num_partitions
    chunks = [live.edge_store.read_bucket(i, j, record_io=False)
              for i in range(p) for j in range(p)]
    return np.concatenate(chunks, axis=0)


def apply_delete(ref: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Reference deletion semantics: remove every matching occurrence."""
    keep = np.ones(len(ref), dtype=bool)
    for row in rows:
        keep &= ~(ref == row).all(axis=1)
    return ref[keep]


def drive_random_stream(live: LiveGraph, compactor: Compactor,
                        rng: np.random.Generator, steps: int,
                        compact_prob: float = 0.15) -> np.ndarray:
    """Random ingest/compact interleaving; returns the reference final edge
    list (maintained independently of the code under test)."""
    ref = base_order_edges(live)
    width = live.width
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.50:
            n = int(rng.integers(1, 40))
            ins = np.empty((n, width), dtype=np.int64)
            ins[:, 0] = rng.integers(0, live.num_nodes, n)
            ins[:, -1] = rng.integers(0, live.num_nodes, n)
            if width == 3:
                ins[:, 1] = rng.integers(0, 4, n)
            live.insert_edges(ins)
            ref = np.concatenate([ref, ins], axis=0)
        elif roll < 0.70 and len(ref):
            n = int(rng.integers(1, 10))
            rows = ref[rng.integers(0, len(ref), n)]
            live.delete_edges(rows)
            ref = apply_delete(ref, rows)
        elif roll < 0.70 + compact_prob:
            compactor.compact()
        else:
            live.add_nodes(int(rng.integers(1, 8)))
    return ref


def rebuild_offline(tmp_path, live: LiveGraph, ref: np.ndarray,
                    name="rebuilt") -> EdgeBucketStore:
    """Offline preprocess of the final edge list under the live scheme."""
    graph = Graph(num_nodes=live.num_nodes, src=ref[:, 0], dst=ref[:, -1],
                  rel=ref[:, 1] if live.width == 3 else None,
                  num_relations=live.edge_store.num_relations)
    return EdgeBucketStore(tmp_path / f"{name}-edges.bin", graph, live.scheme)


# ---------------------------------------------------------------------------
# Delta log
# ---------------------------------------------------------------------------

class TestDeltaLog:
    def test_spill_roundtrip(self, tmp_path):
        """Spilled segments serve bucket reads identically to memory."""
        rng = np.random.default_rng(0)
        kwargs = dict(num_partitions=4, has_relations=False)
        spilly = GraphDeltaLog(spill_dir=tmp_path / "spill",
                               spill_threshold=25, **kwargs)
        memory = GraphDeltaLog(spill_dir=None, **kwargs)
        for _ in range(10):
            n = int(rng.integers(5, 20))
            src = rng.integers(0, 100, n)
            dst = rng.integers(0, 100, n)
            bi, bj = src % 4, dst % 4
            for log in (spilly, memory):
                log.append(0, src, dst, None, bi, bj)
        assert spilly.spills > 0
        for i in range(4):
            for j in range(4):
                a = spilly.events_for_bucket(i, j)
                b = memory.events_for_bucket(i, j)
                for col in ("op", "src", "dst", "seq"):
                    assert np.array_equal(a[col], b[col])

    def test_mark_compacted_forgets(self, tmp_path):
        log = GraphDeltaLog(4, spill_dir=tmp_path / "spill", spill_threshold=5)
        ids = np.arange(20)
        log.append(0, ids, ids, None, ids % 4, ids % 4)
        assert log.spills >= 1 and log.pending_events == 20
        log.mark_compacted(log.seq)
        assert log.pending_events == 0
        assert len(list((tmp_path / "spill").glob("*.npz"))) == 0
        for i in range(4):
            assert len(log.events_for_bucket(i, i)["seq"]) == 0

    def test_horizon_cannot_move_backwards(self):
        log = GraphDeltaLog(2)
        log.append(0, np.array([1]), np.array([1]), None,
                   np.array([0]), np.array([0]))
        log.mark_compacted(1)
        with pytest.raises(ValueError):
            log.mark_compacted(0)


# ---------------------------------------------------------------------------
# The equivalence property
# ---------------------------------------------------------------------------

class TestStreamedVsRebuilt:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("with_rel", [False, True])
    def test_buckets_match_offline_rebuild(self, tmp_path, seed, with_rel):
        """Property: every composed bucket equals the offline rebuild's,
        for random ingest/delete/add-node/compact interleavings."""
        live = make_live(tmp_path, with_rel=with_rel, seed=seed)
        rng = np.random.default_rng(100 + seed)
        ref = drive_random_stream(live, Compactor(live), rng, steps=40)
        rebuilt = rebuild_offline(tmp_path, live, ref)
        p = live.num_partitions
        for i in range(p):
            for j in range(p):
                assert np.array_equal(
                    live.bucket_edges(i, j, record_io=False),
                    rebuilt.read_bucket(i, j, record_io=False)), (i, j)
        assert live.num_live_edges() == len(ref)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_sampling_bit_identical(self, tmp_path, seed):
        """The partition-aware index over the live view draws the same
        neighbors as one over the rebuild, bit for bit."""
        live = make_live(tmp_path, seed=seed)
        rng = np.random.default_rng(200 + seed)
        ref = drive_random_stream(live, Compactor(live), rng, steps=30)
        rebuilt = rebuild_offline(tmp_path, live, ref)
        parts = [0, 2, 5]
        for replace in (True, False):
            s_live = DenseSampler.from_partitions(
                live.scheme, live.bucket_endpoints, parts, [5, 3],
                rng=np.random.default_rng(42))
            s_built = DenseSampler.from_partitions(
                live.scheme, rebuilt.bucket_endpoints, parts, [5, 3],
                rng=np.random.default_rng(42))
            targets = np.unique(rng.integers(0, live.num_nodes, 40))
            nbrs_a, off_a = s_live.index.sample_one_hop(
                targets, 4, np.random.default_rng(7), replace=replace)
            nbrs_b, off_b = s_built.index.sample_one_hop(
                targets, 4, np.random.default_rng(7), replace=replace)
            assert np.array_equal(nbrs_a, nbrs_b)
            assert np.array_equal(off_a, off_b)
            a, b = s_live.sample(targets), s_built.sample(targets)
            assert np.array_equal(a.node_ids, b.node_ids)

    def test_compaction_preserves_view_and_updates_fingerprints(self, tmp_path):
        live = make_live(tmp_path, seed=3)
        rng = np.random.default_rng(33)
        drive_random_stream(live, Compactor(live), rng, steps=15,
                            compact_prob=0.0)
        p = live.num_partitions
        pre = [live.bucket_edges(i, j, record_io=False)
               for i in range(p) for j in range(p)]
        fp_before = live.edge_store.fingerprint()
        report = Compactor(live).compact()
        post = [live.bucket_edges(i, j, record_io=False)
                for i in range(p) for j in range(p)]
        for a, b in zip(pre, post):
            assert np.array_equal(a, b)
        assert live.log.pending_events == 0
        assert report.merged_events > 0
        assert report.fingerprints["edge"] != fp_before
        # Atomicity: no staging debris next to the bucket file.
        assert not live.edge_store.path.with_suffix(
            live.edge_store.path.suffix + ".tmp").exists()

    def test_growth_drops_stale_evicted_bucket_cache(self, tmp_path):
        """cache_evicted=True: sub-runs of the last partition cached across
        an eviction are sized by the old partition — growth must drop them
        or readmission reuses stale offset tables."""
        from repro.graph.csr import PartitionedAdjacencyIndex
        live = make_live(tmp_path, seed=8)
        last = live.num_partitions - 1
        index = PartitionedAdjacencyIndex(live.scheme, live.bucket_endpoints,
                                          [0, last], cache_evicted=True)
        live.add_growth_listener(index.extend_nodes)
        live.add_bucket_listener(index.refresh_buckets)
        index.update_partitions([1], [last])   # evict last; cache keeps it
        ids = live.add_nodes(9)                # last partition grows
        index.update_partitions([last], [1])   # readmit from (dropped) cache
        fresh = PartitionedAdjacencyIndex(live.scheme, live.bucket_endpoints,
                                          [0, last])
        assert np.array_equal(index._total_deg, fresh._total_deg)
        for node in ids:
            assert np.array_equal(index.neighbors_of(int(node)),
                                  fresh.neighbors_of(int(node)))

    def test_index_follows_stream_while_resident(self, tmp_path):
        """An index attached before ingest (resident partitions) sees the
        same virtual runs as one built fresh afterwards."""
        live = make_live(tmp_path, seed=4)
        parts = [1, 3, 4]
        attached = DenseSampler.from_partitions(
            live.scheme, live.bucket_endpoints, parts, [4],
            rng=np.random.default_rng(0))
        live.add_bucket_listener(attached.index.refresh_buckets)
        live.add_growth_listener(attached.index.extend_nodes)
        rng = np.random.default_rng(44)
        drive_random_stream(live, Compactor(live), rng, steps=25)
        fresh = DenseSampler.from_partitions(
            live.scheme, live.bucket_endpoints, parts, [4],
            rng=np.random.default_rng(0))
        for node in range(live.num_nodes):
            assert np.array_equal(attached.index.neighbors_of(node),
                                  fresh.index.neighbors_of(node)), node
        assert np.array_equal(attached.index._total_deg,
                              fresh.index._total_deg)


# ---------------------------------------------------------------------------
# Deletion / growth semantics
# ---------------------------------------------------------------------------

class TestSemantics:
    def test_delete_removes_all_occurrences_and_reinsert_readds(self, tmp_path):
        live = make_live(tmp_path, num_edges=0, seed=9)
        edge = np.array([[5, 17]])
        live.insert_edges(np.repeat(edge, 3, axis=0))   # three copies
        i, j = live.scheme.partition_of(np.array([5, 17]))
        assert len(live.bucket_edges(int(i), int(j), record_io=False)) == 3
        live.delete_edges(edge)
        assert len(live.bucket_edges(int(i), int(j), record_io=False)) == 0
        live.insert_edges(edge)                          # re-add after delete
        assert len(live.bucket_edges(int(i), int(j), record_io=False)) == 1

    def test_new_node_rows_are_batching_independent(self, tmp_path):
        a = make_live(tmp_path, seed=2, name="a")
        b = make_live(tmp_path, seed=2, name="b")
        a.add_nodes(5)
        a.add_nodes(3)
        b.add_nodes(8)
        assert a.num_nodes == b.num_nodes
        assert np.array_equal(a.node_store.read_all(), b.node_store.read_all())
        assert np.array_equal(a.scheme.boundaries, b.scheme.boundaries)

    def test_edge_to_unknown_node_rejected(self, tmp_path):
        live = make_live(tmp_path, seed=1)
        with pytest.raises(ValueError, match="node ID space"):
            live.insert_edges(np.array([[0, live.num_nodes]]))
        ids = live.add_nodes(1)
        live.insert_edges(np.array([[0, ids[0]]]))       # now legal

    def test_buffer_refresh_preserves_dirty_updates_across_growth(self, tmp_path):
        from repro.nn.optim import RowAdagrad
        from repro.storage.buffer import PartitionBuffer
        live = make_live(tmp_path, seed=6)
        buf = PartitionBuffer(live.node_store, 2, optimizer=RowAdagrad(lr=0.5))
        live.add_growth_listener(lambda scheme: buf.refresh_from_store())
        last = live.num_partitions - 1
        buf.set_partitions([0, last])
        rows = live.scheme.partition_nodes(last)[:4]
        grads = np.ones((4, live.node_store.dim), dtype=np.float32)
        before = buf.gather(rows).copy()
        buf.apply_gradients(rows, grads)
        updated = buf.gather(rows).copy()
        assert not np.array_equal(before, updated)
        ids = live.add_nodes(10)                 # grows the dirty partition
        assert buf.resident == [0, last]
        assert np.array_equal(buf.gather(rows), updated)   # update survived
        assert buf.gather(ids).shape == (10, live.node_store.dim)


# ---------------------------------------------------------------------------
# Serving over the live view
# ---------------------------------------------------------------------------

class TestLiveServing:
    def test_engine_queries_match_offline_engine(self, tmp_path):
        live = make_live(tmp_path, seed=11)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        rng = np.random.default_rng(55)
        ref = drive_random_stream(live, Compactor(live), rng, steps=25)
        rebuilt = rebuild_offline(tmp_path, live, ref)

        # Offline engine: same table served from a separate read-only store.
        scheme = live.scheme
        store2 = NodeStore(tmp_path / "offline-nodes.bin", scheme,
                           live.node_store.dim, learnable=False)
        store2.initialize(values=live.node_store.read_all())
        offline = ServingEngine(model, store2, buffer_capacity=3,
                                edge_source=rebuilt.bucket_endpoints)

        ids = rng.integers(0, live.num_nodes, 50)
        assert np.array_equal(engine.get_embeddings(ids),
                              offline.get_embeddings(ids))
        pairs = np.stack([rng.integers(0, live.num_nodes, 30),
                          rng.integers(0, live.num_nodes, 30)], axis=1)
        assert np.array_equal(engine.score_edges(pairs),
                              offline.score_edges(pairs))
        ids_a, sc_a = engine.topk_targets(7, 5)
        ids_b, sc_b = offline.topk_targets(7, 5)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(sc_a, sc_b)

    def test_encode_on_read_matches_offline_engine(self, tmp_path):
        live = make_live(tmp_path, num_nodes=80, num_edges=400, p=4, seed=12)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="graphsage",
                                   num_layers=1, fanouts=(4,), seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=2,
                                         fanouts=cfg.fanouts)
        rng = np.random.default_rng(66)
        ref = drive_random_stream(live, Compactor(live), rng, steps=15)
        rebuilt = rebuild_offline(tmp_path, live, ref)
        store2 = NodeStore(tmp_path / "offline-nodes.bin", live.scheme,
                           live.node_store.dim, learnable=False)
        store2.initialize(values=live.node_store.read_all())
        offline = ServingEngine(model, store2, buffer_capacity=2,
                                edge_source=rebuilt.bucket_endpoints,
                                fanouts=cfg.fanouts)
        ids = rng.integers(0, live.num_nodes, 20)
        assert np.array_equal(engine.encode_nodes(ids, seed=9),
                              offline.encode_nodes(ids, seed=9))

    def test_concurrent_ingest_and_batched_queries(self, tmp_path):
        """Ingest/compact/grow on one thread while a RequestBatcher worker
        serves queries: the shared live lock must keep every result
        well-formed (no torn scheme/buffer views, no spurious errors)."""
        import threading
        from repro.serve.batcher import RequestBatcher
        live = make_live(tmp_path, num_nodes=240, num_edges=1200, p=6,
                         seed=14)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        errors = []

        def mutate():
            rng = np.random.default_rng(7)
            try:
                for step in range(30):
                    ins = np.stack([rng.integers(0, live.num_nodes, 40),
                                    rng.integers(0, live.num_nodes, 40)],
                                   axis=1)
                    live.insert_edges(ins)
                    if step % 7 == 3:
                        live.add_nodes(5)
                    if step % 10 == 9:
                        Compactor(live).compact()
            except Exception as exc:       # pragma: no cover - failure path
                errors.append(exc)

        with RequestBatcher(engine, max_batch=8, max_wait_ms=1.0) as batcher:
            writer = threading.Thread(target=mutate)
            writer.start()
            while writer.is_alive():
                rows = batcher.get_embeddings(np.arange(0, 200, 5))
                assert rows.shape == (40, live.node_store.dim)
                assert np.isfinite(rows).all()
                ids, scores = batcher.topk_targets(3, 5)
                assert len(ids) == 5
                assert (ids < live.num_nodes).all()
            writer.join()
        assert not errors

    def test_new_nodes_queryable_immediately(self, tmp_path):
        live = make_live(tmp_path, seed=13)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        engine.get_embeddings(np.arange(40))             # warm the buffer
        ids = live.add_nodes(6)
        rows = engine.get_embeddings(ids)
        scale = 1.0 / live.node_store.dim
        for k, node in enumerate(ids):
            expected = np.random.default_rng(
                [live.seed, int(node)]).uniform(-scale, scale,
                                                live.node_store.dim)
            assert np.allclose(rows[k], expected.astype(np.float32))

    def test_grown_nodes_rankable_by_topk(self, tmp_path):
        """Regression: the top-k clamp used to read the node count outside
        the query guard, so a query racing growth could clamp from the old
        total while the sweep iterated the grown scheme. The clamp now
        reads the dynamic scheme inside the guard: immediately after
        growth, k = new total must be honored and the grown nodes must be
        rankable — on the exact sweep and the (invalidated-then-rebuilt)
        ANN sweep alike."""
        live = make_live(tmp_path, seed=15)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        engine.topk_targets(0, 5)                # pre-growth index build
        before = live.num_nodes
        grown = live.add_nodes(7)
        total = live.num_nodes
        assert total == before + 7
        for exact in (True, False):
            ids, scores = engine.topk_targets(2, total, exact=exact)
            assert ids.shape == scores.shape == (total,)
            assert np.isin(grown, ids).all()
            # Best-first with deterministic id tie-break: re-sorting by
            # (score desc, id asc) must be the identity.
            order = np.lexsort((ids, -scores))
            assert np.array_equal(order, np.arange(total))
        ids_x, sc_x = engine.topk_targets(2, 10, exact=True)
        ids_a, sc_a = engine.topk_targets(2, 10)
        assert np.array_equal(ids_x, ids_a)
        assert np.allclose(sc_x, sc_a, atol=1e-5)


# ---------------------------------------------------------------------------
# Batched multi-source top-k (satellite)
# ---------------------------------------------------------------------------

class TestBatchedTopK:
    def _engine(self, tmp_path, seed=21):
        live = make_live(tmp_path, seed=seed)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        return ServingEngine.over_live(live, model, buffer_capacity=3)

    def test_matches_per_source_queries(self, tmp_path):
        engine = self._engine(tmp_path)
        srcs = [3, 50, 99, 117]
        ids_b, sc_b = engine.topk_targets_batch(srcs, 6, exclude=srcs)
        assert ids_b.shape == sc_b.shape == (4, 6)
        for row, src in enumerate(srcs):
            ids_1, sc_1 = engine.topk_targets(src, 6, exclude=srcs)
            assert np.array_equal(ids_b[row], ids_1)
            assert np.allclose(sc_b[row], sc_1, rtol=1e-5)

    def test_one_sweep_for_many_sources(self, tmp_path):
        srcs = [1, 40, 80, 110]
        batch_engine = self._engine(tmp_path / "batch")
        batch_engine.topk_targets_batch(srcs, 5)
        batch_swaps = batch_engine.stats.swaps
        loop_engine = self._engine(tmp_path / "loop")
        for src in srcs:
            loop_engine.topk_targets(src, 5)
        # One shared sweep (plus the source gathers) vs one sweep per query.
        p = batch_engine.scheme.num_partitions
        assert batch_swaps <= p + batch_engine.buffer.capacity
        assert batch_swaps < loop_engine.stats.swaps

    def test_through_request_batcher(self, tmp_path):
        from repro.serve.batcher import RequestBatcher
        engine = self._engine(tmp_path)
        with RequestBatcher(engine, max_batch=8, max_wait_ms=20.0) as batcher:
            requests = [batcher.submit(
                "topk", np.array([s, 0, 5], dtype=np.int64))
                for s in (2, 30, 60)]
            results = [r.wait() for r in requests]
        for (ids, scores), src in zip(results, (2, 30, 60)):
            ids_1, sc_1 = engine.topk_targets(src, 5)
            assert np.array_equal(ids, ids_1)
            assert np.allclose(scores, sc_1, rtol=1e-5)

    def test_blocking_helper(self, tmp_path):
        from repro.serve.batcher import RequestBatcher
        engine = self._engine(tmp_path)
        with RequestBatcher(engine, max_batch=4, max_wait_ms=1.0) as batcher:
            ids, scores = batcher.topk_targets(11, 4)
        assert len(ids) == len(scores) == 4


# ---------------------------------------------------------------------------
# Continual refresh
# ---------------------------------------------------------------------------

class TestContinualTrainer:
    CFG = dict(embedding_dim=8, encoder="none", batch_size=64,
               num_negatives=16, seed=3)

    def test_refresh_bit_identical_to_offline(self, tmp_path):
        """A refresh over the streamed graph equals the same refresh over
        an offline rebuild of the final edge list, bit for bit."""
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=30, name="stream")
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        rng = np.random.default_rng(77)
        ref = drive_random_stream(live, Compactor(live), rng, steps=20)

        # Offline world: rebuilt stores seeded with the streamed table.
        rebuilt = rebuild_offline(tmp_path, live, ref)
        store2 = NodeStore(tmp_path / "off-nodes.bin", live.scheme,
                           live.node_store.dim, learnable=True)
        store2.initialize(values=live.node_store.read_all())
        store2._state[:] = live.node_store.read_all_state()
        off_live = LiveGraph(store2, rebuilt, seed=live.seed)
        off_trainer = ContinualTrainer(off_live, cfg, buffer_capacity=3)
        # Align: same model/optimizer/rng state on both sides.
        off_trainer.model.load_state_dict(trainer.model.state_dict())
        off_trainer.rng.bit_generator.state = trainer.rng.bit_generator.state

        pairs = [(0, 0), (1, 2), (3, 3), (4, 5), (2, 1)]
        trainer.refresh(pairs=pairs)
        off_trainer.refresh(pairs=pairs)
        trainer.buffer.flush()
        off_trainer.buffer.flush()
        assert np.array_equal(live.node_store.read_all(),
                              store2.read_all())
        assert np.array_equal(live.node_store.read_all_state(),
                              store2.read_all_state())
        sd_a, sd_b = trainer.model.state_dict(), off_trainer.model.state_dict()
        assert set(sd_a) == set(sd_b)
        for key in sd_a:
            assert np.array_equal(sd_a[key], sd_b[key]), key

    def test_refresh_covers_touched_buckets_across_compaction(self, tmp_path):
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=31)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        rng = np.random.default_rng(88)
        ins = np.stack([rng.integers(0, live.num_nodes, 100),
                        rng.integers(0, live.num_nodes, 100)], axis=1)
        live.insert_edges(ins)
        touched = set(trainer._pending_pairs)
        assert touched
        Compactor(live).compact()                 # log forgets; trainer must not
        assert trainer._pending_pairs == touched
        record = trainer.refresh()
        assert record.num_batches > 0
        assert not trainer._pending_pairs

    def test_refresh_updates_are_served_immediately(self, tmp_path):
        """A serving engine over the same live graph must see post-refresh
        embeddings: refresh flushes and the engine's buffer re-reads the
        retrained partitions."""
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=34)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        engine = ServingEngine.over_live(live, trainer.model,
                                         buffer_capacity=3)
        probe = np.arange(0, live.num_nodes, 7)
        before = engine.get_embeddings(probe).copy()   # warm + snapshot
        rng = np.random.default_rng(101)
        ins = np.stack([rng.integers(0, live.num_nodes, 200),
                        rng.integers(0, live.num_nodes, 200)], axis=1)
        live.insert_edges(ins)
        record = trainer.refresh()
        assert record.num_batches > 0
        served = engine.get_embeddings(probe)
        assert not np.array_equal(served, before)      # training moved rows
        assert np.array_equal(served, live.node_store.read_all()[probe])

    def test_explicit_pairs_refresh_keeps_cursor_and_pending(self, tmp_path):
        """refresh(pairs=[A]) must not record untouched buckets as trained:
        the seq cursor and the pending accumulator stay put."""
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=35)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3)
        rng = np.random.default_rng(102)
        ins = np.stack([rng.integers(0, live.num_nodes, 80),
                        rng.integers(0, live.num_nodes, 80)], axis=1)
        live.insert_edges(ins)
        pending_before = set(trainer._pending_pairs)
        cursor_before = trainer.refreshed_seq
        trainer.refresh(pairs=[sorted(pending_before)[0]])
        assert trainer.refreshed_seq == cursor_before
        assert trainer._pending_pairs == pending_before
        trainer.refresh()                              # full pass advances
        assert trainer.refreshed_seq == live.log.seq
        assert not trainer._pending_pairs

    def test_snapshot_records_log_position_and_resumes(self, tmp_path):
        cfg = LinkPredictionConfig(**self.CFG)
        live = make_live(tmp_path, seed=32)
        trainer = ContinualTrainer(live, cfg, buffer_capacity=3,
                                   checkpoint_dir=tmp_path / "ckpt")
        rng = np.random.default_rng(99)
        ins = np.stack([rng.integers(0, live.num_nodes, 50),
                        rng.integers(0, live.num_nodes, 50)], axis=1)
        live.insert_edges(ins)
        Compactor(live).compact()
        trainer.refresh()
        path = trainer.save_snapshot()     # flushes the buffer first
        table_at_snap = live.node_store.read_all()
        assert path.is_dir()
        # Damage the table, then resume: state comes back from the snapshot
        # and the recorded stream position tells the caller what to replay.
        live.node_store._table[:] = -1.0
        meta = trainer.resume()
        assert np.array_equal(live.node_store.read_all(), table_at_snap)
        assert meta["stream"]["seq"] == live.log.seq
        assert meta["stream"]["compacted_seq"] == live.log.compacted_seq
        assert meta["stream"]["refreshed_seq"] == trainer.refreshed_seq
        # The bucket listener must keep feeding the accumulator after a
        # resume (resume replaces the contents, not the subscribed set).
        ins2 = np.stack([rng.integers(0, live.num_nodes, 20),
                         rng.integers(0, live.num_nodes, 20)], axis=1)
        live.insert_edges(ins2)
        assert trainer._pending_pairs

    def test_reopened_stores_match_originals(self, tmp_path):
        """NodeStore.open / EdgeBucketStore.open reattach to a compacted,
        grown workdir bit-for-bit (the CLI --resume-from path)."""
        live = make_live(tmp_path, seed=36, with_rel=True)
        rng = np.random.default_rng(103)
        drive_random_stream(live, Compactor(live), rng, steps=15)
        Compactor(live).compact()
        live.node_store.flush()
        node2 = NodeStore.open(live.node_store.path, live.scheme,
                               live.node_store.dim, learnable=True)
        edge2 = EdgeBucketStore.open(live.edge_store.path, live.scheme)
        assert np.array_equal(node2.read_all(), live.node_store.read_all())
        assert edge2.fingerprint() == live.edge_store.fingerprint()
        assert node2.fingerprint() == live.node_store.fingerprint()
        p = live.num_partitions
        for i in range(p):
            for j in range(p):
                assert np.array_equal(
                    edge2.read_bucket(i, j, record_io=False),
                    live.edge_store.read_bucket(i, j, record_io=False))

    def test_pack_pairs_covers_every_pair_within_capacity(self):
        rng = np.random.default_rng(5)
        pairs = {(int(i), int(j)) for i, j in rng.integers(0, 10, (30, 2))}
        for capacity in (2, 3, 5):
            groups = pack_pairs(sorted(pairs), capacity)
            seen = [pair for _, batch in groups for pair in batch]
            assert sorted(seen) == sorted(pairs)       # exactly once each
            for parts, batch in groups:
                assert len(parts) <= capacity
                assert all(i in parts and j in parts for i, j in batch)
        with pytest.raises(ValueError):
            pack_pairs([(0, 1)], 1)


# ---------------------------------------------------------------------------
# Compressed snapshots (satellite)
# ---------------------------------------------------------------------------

class TestCompressedSnapshots:
    def test_roundtrip_bit_identical_and_smaller(self, tmp_path):
        rng = np.random.default_rng(0)
        # Highly compressible payload (zeros + repeats) to make the size
        # comparison robust.
        arrays = {"table": rng.uniform(size=(400, 16)).astype(np.float32),
                  "state": np.zeros((400, 16), dtype=np.float32),
                  "cursor": np.arange(1000)}
        meta = {"trainer": "test", "epoch": 1}
        plain = SnapshotManager(tmp_path / "plain")
        packed = SnapshotManager(tmp_path / "packed", compress=True)
        p1 = plain.save(1, meta, arrays)
        p2 = packed.save(1, meta, arrays)
        size1 = (p1 / "arrays.npz").stat().st_size
        size2 = (p2 / "arrays.npz").stat().st_size
        assert size2 < size1
        meta2, arrays2 = packed.load()
        assert meta2 == meta
        for name in arrays:
            assert np.array_equal(arrays[name], arrays2[name])

    def test_formats_interchangeable(self, tmp_path):
        """A manager can load snapshots written with either setting."""
        arrays = {"x": np.arange(100, dtype=np.float32)}
        SnapshotManager(tmp_path / "r", compress=True).save(1, {"a": 1}, arrays)
        meta, loaded = SnapshotManager(tmp_path / "r").load()
        assert meta == {"a": 1}
        assert np.array_equal(loaded["x"], arrays["x"])

    def test_trainer_resume_from_compressed_snapshot(self, tmp_path):
        from repro.graph.datasets import load_fb15k237
        from repro.train import LinkPredictionTrainer
        data = load_fb15k237(scale=0.02)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none",
                                   num_epochs=2, batch_size=256,
                                   num_negatives=8, seed=0)
        kwargs = dict(checkpoint_dir=tmp_path / "c", checkpoint_every=1)
        one = LinkPredictionTrainer(data, cfg, checkpoint_compress=True,
                                    **kwargs)
        one.train()
        two = LinkPredictionTrainer(data, cfg, **kwargs)
        two.resume()                       # plain manager reads compressed
        assert np.array_equal(one.embeddings.table, two.embeddings.table)


# ---------------------------------------------------------------------------
# CLI driver (subprocess)
# ---------------------------------------------------------------------------

class TestStreamCLI:
    def test_driver_with_verify(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "stream", "--scale", "0.02",
             "--partitions", "4", "--buffer", "2", "--dim", "8",
             "--events", "600", "--event-batch", "200",
             "--compact-every", "300", "--refresh", "--verify",
             "--workdir", str(tmp_path / "wd")],
            capture_output=True, text=True, timeout=300,
            cwd=REPO, env=_cli_env())
        assert result.returncode == 0, result.stderr
        assert "verify OK" in result.stdout
        assert "compacted" in result.stdout
        assert "stream stats:" in result.stdout

    def test_resume_from_stream_snapshot(self, tmp_path):
        """The CLI can resume the snapshots it writes: the workdir's
        compacted, grown stores are reopened, not rebuilt."""
        base = [sys.executable, "-m", "repro", "stream", "--scale", "0.02",
                "--partitions", "4", "--buffer", "2", "--dim", "8",
                "--event-batch", "200", "--compact-every", "300",
                "--refresh", "--workdir", str(tmp_path / "wd"),
                "--checkpoint-dir", str(tmp_path / "ck")]
        first = subprocess.run(base + ["--events", "600",
                                       "--checkpoint-every", "1"],
                               capture_output=True, text=True, timeout=300,
                               cwd=REPO, env=_cli_env())
        assert first.returncode == 0, first.stderr
        second = subprocess.run(
            base + ["--events", "300", "--verify",
                    "--resume-from", str(tmp_path / "ck")],
            capture_output=True, text=True, timeout=300,
            cwd=REPO, env=_cli_env())
        assert second.returncode == 0, second.stderr
        assert "resumed at stream position" in second.stdout
        assert "verify OK" in second.stdout


def _cli_env():
    import os
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


# ---------------------------------------------------------------------------
# Write-ahead log (durability tentpole)
# ---------------------------------------------------------------------------

class TestWriteAheadLog:
    def _append_some(self, wal, count, start=0):
        rng = np.random.default_rng(3)
        seq = start
        for _ in range(count):
            n = int(rng.integers(1, 6))
            src = rng.integers(0, 50, n)
            wal.append_edges(seq, 0, src, rng.integers(0, 50, n),
                             np.zeros(n, dtype=np.int64), src % 4,
                             rng.integers(0, 4, n))
            seq += n
        return seq

    def test_scan_roundtrips_frames(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        end = self._append_some(wal, 7)
        wal.append_nodes(end, 50, 55)
        wal.close()
        rec = WriteAheadLog.scan(tmp_path / "wal")
        assert len(rec.frames) == 8
        assert rec.max_seq == end
        assert rec.max_nodes_recorded == 55
        assert rec.torn_frames == 0
        # Replaying front to back reproduces contiguous sequence numbers.
        seq = 0
        for frame in rec.frames[:-1]:
            assert frame.seq_lo == seq
            seq = frame.seq_end

    def test_torn_tail_dropped_and_file_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        self._append_some(wal, 5)
        wal.close()
        seg = sorted((tmp_path / "wal").glob("wal-*.log"))[-1]
        clean_size = seg.stat().st_size
        with open(seg, "ab") as fh:              # half a frame: torn write
            fh.write(b"WFRM\x01" + b"\x00" * 9)
        rec = WriteAheadLog.scan(tmp_path / "wal")
        assert len(rec.frames) == 5
        assert rec.torn_frames == 1 and rec.torn_bytes > 0
        assert seg.stat().st_size == clean_size  # physically truncated
        again = WriteAheadLog.scan(tmp_path / "wal")
        assert again.torn_frames == 0            # idempotent after repair

    def test_corruption_before_tail_raises(self, tmp_path):
        from repro.stream import WalCorruption
        wal = WriteAheadLog(tmp_path / "wal")
        self._append_some(wal, 5)
        wal.close()
        seg = sorted((tmp_path / "wal").glob("wal-*.log"))[0]
        blob = bytearray(seg.read_bytes())
        blob[25] ^= 0xFF                         # flip a byte mid-file
        seg.write_bytes(bytes(blob))
        with pytest.raises(WalCorruption):
            WriteAheadLog.scan(tmp_path / "wal")

    def test_group_commit_window(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync_every=4)
        self._append_some(wal, 10)
        assert wal.stats()["syncs"] == 2         # at frames 4 and 8
        wal.close()                              # flushes the remainder
        rec = WriteAheadLog.scan(tmp_path / "wal")
        assert len(rec.frames) == 10

    def test_rotation_and_selective_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_bytes=200)
        end = self._append_some(wal, 12)
        assert wal.stats()["rotations"] >= 2
        segs = sorted((tmp_path / "wal").glob("wal-*.log"))
        mid_cover = end // 2
        wal.truncate_covered(mid_cover)
        left = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert 0 < len(left) <= len(segs)        # partial truncation only
        rec = WriteAheadLog.scan(tmp_path / "wal")
        assert rec.covered_seq == mid_cover
        # Truncation is whole-segment: every surviving *segment* still
        # guards something past the horizon (sub-horizon frames inside it
        # are filtered by the restore floor, not double-applied), and every
        # event past the horizon is still present.
        assert all(s.end_seq > mid_cover for s in rec.segments
                   if s.end_seq)                # closed, edge-bearing segs
        assert rec.max_seq == end
        wal.truncate_covered(end)
        rec2 = WriteAheadLog.scan(tmp_path / "wal")
        # Every *closed* covered segment is gone; only the active segment
        # (still open for appends) may linger below the horizon.
        assert all(s.end_seq > end for s in rec2.segments[:-1] if s.end_seq)
        wal.close()

    def test_node_frames_guard_segments_until_covered(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_bytes=64)
        wal.append_nodes(0, 50, 55)
        self._append_some(wal, 4)                # forces rotation past 64B
        end = wal.stats()["edge_events"]
        removed = wal.truncate_covered(end, num_nodes=50)
        rec = WriteAheadLog.scan(tmp_path / "wal")
        assert rec.max_nodes_recorded == 55      # growth record survived
        wal.truncate_covered(end, num_nodes=55)
        rec2 = WriteAheadLog.scan(tmp_path / "wal")
        assert rec2.num_nodes == 55              # now carried by the meta
        wal.close()


# ---------------------------------------------------------------------------
# Crash matrix: every WAL/spill/compaction boundary recovers bit-identically
# ---------------------------------------------------------------------------

CRASH_MATRIX = (CrashPoint.WAL_FRAME_MID, CrashPoint.WAL_TRUNCATE_PRE,
                CrashPoint.SPILL_POST_WRITE, CrashPoint.REWRITE_STAGED,
                CrashPoint.REWRITE_POST_RENAME)


class TestCrashMatrix:
    """Drive a seeded WAL-journaled stream into a simulated crash at each
    durability boundary, recover with the snapshot-free composition
    (reattach stores -> restore log -> replay WAL), and require the
    recovered view to be bit-identical to an offline rebuild of exactly
    the acknowledged events — then keep streaming to prove the resumed
    journal works."""

    BASE_NODES = 80

    def _wire(self, live, injector):
        live.log.fault_hook = injector.fire
        live.log.wal.fault_hook = injector.fire
        live.edge_store.fault_hook = injector.fire

    def _drive_to_crash(self, live, compactor, injector, rng):
        ref = base_order_edges(live)
        width = live.width
        # The op that crashes is durable iff its WAL write completed before
        # the crash point fired: true for spill/truncate boundaries (the
        # journal accepted the batch first), false for a torn frame.
        durable = injector.crash_at in (CrashPoint.WAL_TRUNCATE_PRE,
                                        CrashPoint.SPILL_POST_WRITE)
        for step in range(400):
            roll = step % 11
            try:
                if roll == 8:
                    live.add_nodes(int(rng.integers(1, 5)))
                elif roll == 10:
                    compactor.compact()
                elif roll == 7 and len(ref):
                    n = int(rng.integers(1, 6))
                    rows = ref[rng.integers(0, len(ref), n)]
                    live.delete_edges(rows)
                    ref = apply_delete(ref, rows)
                else:
                    n = int(rng.integers(5, 30))
                    ins = np.empty((n, width), dtype=np.int64)
                    ins[:, 0] = rng.integers(0, live.num_nodes, n)
                    ins[:, -1] = rng.integers(0, live.num_nodes, n)
                    live.insert_edges(ins)
                    ref = np.concatenate([ref, ins], axis=0)
            except SimulatedCrash:
                if durable:
                    if roll == 7:
                        ref = apply_delete(ref, rows)
                    elif roll not in (8, 10):
                        ref = np.concatenate([ref, ins], axis=0)
                return ref
        raise AssertionError(
            f"crash point {injector.crash_at} never fired in 400 steps")

    def _assert_matches_rebuild(self, tmp_path, live, ref, name):
        rebuilt = rebuild_offline(tmp_path, live, ref, name=name)
        p = live.num_partitions
        for i in range(p):
            for j in range(p):
                assert np.array_equal(
                    live.bucket_edges(i, j, record_io=False),
                    rebuilt.read_bucket(i, j, record_io=False)), (i, j)
        rebuilt.close()

    @pytest.mark.parametrize("point", CRASH_MATRIX)
    @pytest.mark.parametrize("after", [0, 3])
    def test_recovers_bit_identical(self, tmp_path, point, after):
        seed = CRASH_MATRIX.index(point) * 10 + after
        live = make_live(tmp_path, num_nodes=self.BASE_NODES, num_edges=400,
                         p=4, seed=seed, spill_threshold=60, wal=True,
                         wal_segment_bytes=2048)
        compactor = Compactor(live)
        injector = FaultInjector(point, after=after)
        self._wire(live, injector)
        rng = np.random.default_rng(seed + 100)
        ref = self._drive_to_crash(live, compactor, injector, rng)
        assert injector.fired
        nodes_acked = live.num_nodes if point != CrashPoint.WAL_FRAME_MID \
            else live.num_nodes    # torn op never mutated the live graph
        del live                   # "process death": in-memory state is gone

        live2 = recover_live(tmp_path, base_nodes=self.BASE_NODES, p=4,
                             seed=seed, spill_threshold=60)
        assert live2.num_nodes == nodes_acked
        self._assert_matches_rebuild(tmp_path, live2, ref, "rebuilt-crash")

        # The service keeps going: the restored journal accepts new events
        # and a fresh compaction folds old + replayed + new together.
        width = live2.width
        for _ in range(5):
            n = int(rng.integers(5, 20))
            ins = np.empty((n, width), dtype=np.int64)
            ins[:, 0] = rng.integers(0, live2.num_nodes, n)
            ins[:, -1] = rng.integers(0, live2.num_nodes, n)
            live2.insert_edges(ins)
            ref = np.concatenate([ref, ins], axis=0)
        Compactor(live2).compact()
        self._assert_matches_rebuild(tmp_path, live2, ref, "rebuilt-after")

    def test_node_rows_regenerated_identically(self, tmp_path):
        """Recovered growth regenerates the same deterministic rows the
        original adds produced (acknowledged adds survive even when the
        store file never saw them)."""
        live = make_live(tmp_path, num_nodes=40, num_edges=100, p=4,
                         seed=3, wal=True)
        live.add_nodes(7)
        original, _ = live.node_store.read_partition(live.num_partitions - 1)
        original = original.copy()
        del live
        live2 = recover_live(tmp_path, base_nodes=40, p=4, seed=3)
        assert live2.num_nodes == 47
        recovered, _ = live2.node_store.read_partition(
            live2.num_partitions - 1)
        assert np.array_equal(original, recovered)

    def test_background_compaction_crash_recovers(self, tmp_path):
        """Crash while the *background* worker is mid-compaction: the main
        thread's acknowledged events survive recovery."""
        live = make_live(tmp_path, num_nodes=self.BASE_NODES, num_edges=300,
                         p=4, seed=9, wal=True)
        injector = FaultInjector(CrashPoint.REWRITE_STAGED)
        live.edge_store.fault_hook = injector.fire
        bg = BackgroundCompactor(Compactor(live), staleness_threshold=80,
                                 poll_interval=0.005, max_backoff=0.01,
                                 seed=9)
        ref = base_order_edges(live)
        rng = np.random.default_rng(42)
        with bg:
            for _ in range(40):
                n = int(rng.integers(5, 20))
                ins = np.empty((n, live.width), dtype=np.int64)
                ins[:, 0] = rng.integers(0, live.num_nodes, n)
                ins[:, -1] = rng.integers(0, live.num_nodes, n)
                live.insert_edges(ins)
                ref = np.concatenate([ref, ins], axis=0)
                if injector.fired:
                    break
        assert injector.fired                   # the worker hit the crash
        assert bg.failures >= 1                 # ... and degraded gracefully
        del live
        live2 = recover_live(tmp_path, base_nodes=self.BASE_NODES, p=4,
                             seed=9)
        self._assert_matches_rebuild(tmp_path, live2, ref, "rebuilt-bg")


# ---------------------------------------------------------------------------
# Background compactor: retry/backoff and graceful degradation
# ---------------------------------------------------------------------------

class TestBackgroundCompactor:
    def _fill(self, live, rng, events=200):
        n = events
        ins = np.empty((n, live.width), dtype=np.int64)
        ins[:, 0] = rng.integers(0, live.num_nodes, n)
        ins[:, -1] = rng.integers(0, live.num_nodes, n)
        live.insert_edges(ins)
        return ins

    def test_compacts_when_staleness_crosses_threshold(self, tmp_path):
        import time
        live = make_live(tmp_path, p=4, num_nodes=60, num_edges=200, seed=2)
        bg = BackgroundCompactor(Compactor(live), staleness_threshold=100,
                                 poll_interval=0.005, seed=2)
        events = []
        bg.add_listener(lambda e, info: events.append((e, info)))
        rng = np.random.default_rng(5)
        with bg:
            self._fill(live, rng, 150)
            bg.kick()
            deadline = time.monotonic() + 10
            while live.staleness() > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert live.staleness() == 0
        assert bg.runs >= 1 and bg.failures == 0
        assert any(e == "compaction-done" for e, _ in events)
        health = live.health()["compaction"]
        assert health["state"] == "idle" and health["runs"] >= 1

    def test_degrades_then_recovers_with_backoff(self, tmp_path):
        import time
        live = make_live(tmp_path, p=4, num_nodes=60, num_edges=200, seed=4)
        fails = {"left": 2}

        def flaky(point):
            if point == CrashPoint.REWRITE_STAGED and fails["left"] > 0:
                fails["left"] -= 1
                raise OSError("transient disk error")

        live.edge_store.fault_hook = flaky
        bg = BackgroundCompactor(Compactor(live), staleness_threshold=50,
                                 poll_interval=0.005, max_backoff=0.02,
                                 seed=4)
        events = []
        bg.add_listener(lambda e, info: events.append(e))
        rng = np.random.default_rng(6)
        with bg:
            self._fill(live, rng, 120)
            bg.kick()
            deadline = time.monotonic() + 10
            while ("compaction-done" not in events
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        assert events.count("compaction-failed") == 2
        assert "compaction-done" in events
        assert bg.failures == 2 and bg.runs >= 1
        assert live.staleness() == 0
        health = bg.health()
        assert health["consecutive_failures"] == 0    # success reset it
        assert health["failures"] == 2                # history is kept

    def test_degraded_service_keeps_serving(self, tmp_path):
        """While compaction is failing, ingest and queries proceed from the
        overlay — degradation, not an outage."""
        import time
        live = make_live(tmp_path, p=4, num_nodes=60, num_edges=200, seed=8)
        live.edge_store.fault_hook = lambda point: (_ for _ in ()).throw(
            OSError("disk gone")) if point == CrashPoint.REWRITE_STAGED \
            else None
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        bg = BackgroundCompactor(Compactor(live), staleness_threshold=10,
                                 poll_interval=0.005, max_backoff=0.01,
                                 seed=8)
        rng = np.random.default_rng(11)
        ref = base_order_edges(live)
        with bg:
            deadline = time.monotonic() + 10
            while bg.failures < 2 and time.monotonic() < deadline:
                n = 20
                ins = np.empty((n, live.width), dtype=np.int64)
                ins[:, 0] = rng.integers(0, live.num_nodes, n)
                ins[:, -1] = rng.integers(0, live.num_nodes, n)
                live.insert_edges(ins)
                ref = np.concatenate([ref, ins], axis=0)
                rows = engine.get_embeddings(np.arange(20))
                assert np.isfinite(rows).all()
        assert bg.failures >= 2
        assert bg.health()["state"] == "degraded"
        assert live.staleness() > 0               # merges kept failing...
        rebuilt = rebuild_offline(tmp_path, live, ref, name="degraded")
        p = live.num_partitions
        for i in range(p):                        # ...but the view is exact
            for j in range(p):
                assert np.array_equal(
                    live.bucket_edges(i, j, record_io=False),
                    rebuilt.read_bucket(i, j, record_io=False))
        rebuilt.close()


# ---------------------------------------------------------------------------
# Lock primitives
# ---------------------------------------------------------------------------

class TestLockPrimitives:
    def test_shared_is_concurrent_exclusive_is_not(self):
        import threading
        import time
        lock = SharedExclusiveLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.shared():
                inside.wait()                     # both readers in at once

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.exclusive():
                acquired.set()
                release.wait(timeout=5)

        w = threading.Thread(target=writer)
        w.start()
        assert acquired.wait(timeout=5)
        got_shared = threading.Event()

        def late_reader():
            with lock.shared():
                got_shared.set()

        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        assert not got_shared.is_set()            # excluded while held
        release.set()
        assert got_shared.wait(timeout=5)
        w.join(timeout=5)
        r.join(timeout=5)

    def test_shared_reentrant_and_upgrade_refused(self):
        lock = SharedExclusiveLock()
        with lock.shared():
            with lock.shared():                   # reentrant
                with pytest.raises(RuntimeError):
                    lock.acquire_exclusive()      # upgrade would deadlock

    def test_exclusive_holder_may_read(self):
        lock = SharedExclusiveLock()
        with lock.exclusive():
            with lock.shared():
                pass

    def test_striped_lock_orders_overlapping_sets(self):
        import threading
        stripes = StripedLock(4)
        counter = {"v": 0}
        pairs_a = [(0, 1), (2, 3), (1, 2)]
        pairs_b = list(reversed(pairs_a))

        def bump(pairs):
            for _ in range(200):
                with stripes.pairs(pairs, 4):
                    counter["v"] += 1

        threads = [threading.Thread(target=bump, args=(p,))
                   for p in (pairs_a, pairs_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)   # no deadlock
        assert counter["v"] == 400

    def test_version_counter_detects_writes(self):
        version = VersionCounter()
        token = version.begin()
        assert not version.changed(token)
        with version.write():
            pass
        assert version.changed(token)
        token2 = version.begin()
        assert not version.changed(token2)


# ---------------------------------------------------------------------------
# Bounded request batcher (satellite)
# ---------------------------------------------------------------------------

class _StubEngine:
    """Minimal engine: optional gate event stalls execution."""

    def __init__(self, gate=None, dim=4):
        self.gate = gate
        self.dim = dim

    def _maybe_block(self):
        if self.gate is not None:
            assert self.gate.wait(timeout=10)

    def get_embeddings(self, ids):
        self._maybe_block()
        return np.zeros((len(np.asarray(ids)), self.dim), dtype=np.float32)

    def score_edges(self, pairs):
        self._maybe_block()
        return np.zeros(len(pairs), dtype=np.float32)

    def topk_targets_batch(self, srcs, k, rel=None):
        self._maybe_block()
        n = len(np.asarray(srcs))
        return (np.zeros((n, k), dtype=np.int64),
                np.zeros((n, k), dtype=np.float32))


class TestBatcherBounds:
    def test_overload_raises_typed_error_and_counts(self):
        import threading
        from repro.serve import Overloaded, RequestBatcher
        gate = threading.Event()
        engine = _StubEngine(gate=gate)
        with RequestBatcher(engine, max_batch=64, max_wait_ms=50.0,
                            max_queue=3) as batcher:
            pending = [batcher.submit("embed", np.arange(2))
                       for _ in range(3)]
            with pytest.raises(Overloaded):
                batcher.submit("embed", np.arange(2))
            assert batcher.stats()["overloads"] == 1
            gate.set()
            for req in pending:
                assert req.wait().shape == (2, 4)
        assert batcher.stats()["requests"] == 3

    def test_timeout_delivered_and_counted(self):
        import threading
        from repro.serve import RequestBatcher, RequestTimeout
        gate = threading.Event()
        engine = _StubEngine(gate=gate)
        batcher = RequestBatcher(engine, max_batch=4, max_wait_ms=1.0,
                                 timeout_ms=30.0)
        with batcher:
            req = batcher.submit("embed", np.arange(3))
            with pytest.raises(RequestTimeout):
                req.wait()
            gate.set()
        assert batcher.stats()["timeouts"] == 1

    def test_expired_requests_dropped_by_worker(self):
        import threading
        import time
        from repro.serve import RequestBatcher, RequestTimeout
        gate = threading.Event()
        engine = _StubEngine(gate=gate)
        with RequestBatcher(engine, max_batch=1, max_wait_ms=0.5) as batcher:
            slow = batcher.submit("embed", np.arange(2))    # occupies worker
            doomed = batcher.submit("embed", np.arange(2), timeout_ms=20.0)
            time.sleep(0.1)                                 # let it expire
            gate.set()
            assert slow.wait().shape == (2, 4)
            with pytest.raises(RequestTimeout):
                doomed.wait()
        assert batcher.stats()["timeouts"] == 1

    def test_per_request_override_beats_default(self):
        from repro.serve import RequestBatcher
        engine = _StubEngine()
        with RequestBatcher(engine, max_batch=4, max_wait_ms=1.0,
                            timeout_ms=1.0) as batcher:
            # Generous per-request override on a stalled-free engine: must
            # complete even though the batcher default is 1ms.
            req = batcher.submit("embed", np.arange(2), timeout_ms=5000.0)
            assert req.wait().shape == (2, 4)


# ---------------------------------------------------------------------------
# Concurrent ingest + serve under the striped-lock surface
# ---------------------------------------------------------------------------

class TestConcurrentIngestServe:
    @pytest.mark.parametrize("stripes", [1, 4])
    def test_parallel_writers_readers_and_background_compaction(
            self, tmp_path, stripes):
        """Multiple ingest threads, multiple query threads, and the
        background compactor all running at once: no torn reads, no
        errors, and the final view is bit-identical to an offline rebuild
        of everything ingested."""
        import threading
        live = make_live(tmp_path, num_nodes=200, num_edges=800, p=4,
                         seed=31 + stripes, lock_stripes=stripes)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=5)
        model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(5))
        engine = ServingEngine.over_live(live, model, buffer_capacity=3)
        bg = BackgroundCompactor(Compactor(live), staleness_threshold=400,
                                 poll_interval=0.005, seed=1)
        base_ref = base_order_edges(live)
        errors = []
        chunks = [[] for _ in range(3)]

        def writer(k):
            rng = np.random.default_rng(100 + k)
            try:
                for _ in range(25):
                    n = int(rng.integers(10, 30))
                    ins = np.empty((n, 2), dtype=np.int64)
                    ins[:, 0] = rng.integers(0, 200, n)
                    ins[:, 1] = rng.integers(0, 200, n)
                    live.insert_edges(ins)
                    chunks[k].append(ins)
            except Exception as exc:    # pragma: no cover - failure path
                errors.append(exc)

        stop = threading.Event()

        def reader(k):
            rng = np.random.default_rng(200 + k)
            try:
                while not stop.is_set():
                    rows = engine.get_embeddings(rng.integers(0, 200, 16))
                    assert rows.shape == (16, 8)
                    assert np.isfinite(rows).all()
            except Exception as exc:    # pragma: no cover - failure path
                errors.append(exc)

        with bg:
            writers = [threading.Thread(target=writer, args=(k,))
                       for k in range(3)]
            readers = [threading.Thread(target=reader, args=(k,))
                       for k in range(2)]
            for t in writers + readers:
                t.start()
            for t in writers:
                t.join(timeout=60)
            stop.set()
            for t in readers:
                t.join(timeout=60)
        assert not errors
        # Equivalence: streamed state == offline rebuild of base + all
        # inserted chunks (writer interleaving does not affect the set;
        # per-bucket order is seq order, which any serial reference with
        # the same per-bucket arrival order reproduces — compare sets).
        final = live.materialize()
        total = sum(len(c) for ch in chunks for c in ch)
        assert live.log.events_appended == total
        ref = np.concatenate(
            [base_ref] + [c for ch in chunks for c in ch])
        assert final.num_edges == len(ref)
        a = np.sort(np.stack([final.src, final.dst], axis=1).view(
            [("s", np.int64), ("d", np.int64)]).ravel())
        b = np.sort(ref.copy().view(
            [("s", np.int64), ("d", np.int64)]).ravel())
        assert np.array_equal(a, b)

    def test_refresh_writeback_overlaps_queries(self, tmp_path):
        """Seqlock write-back: queries running concurrently with a
        refresh's table write-back always see finite, well-formed rows."""
        import threading
        live = make_live(tmp_path, num_nodes=160, num_edges=800, p=4,
                         seed=17)
        cfg = LinkPredictionConfig(embedding_dim=8, encoder="none",
                                   batch_size=64, num_negatives=8,
                                   num_epochs=1, seed=17)
        trainer = ContinualTrainer(live, cfg, num_relations=1,
                                   buffer_capacity=2)
        engine = ServingEngine.over_live(live, trainer.model,
                                         buffer_capacity=2)
        rng = np.random.default_rng(3)
        ins = np.empty((600, 2), dtype=np.int64)
        ins[:, 0] = rng.integers(0, 160, 600)
        ins[:, 1] = rng.integers(0, 160, 600)
        live.insert_edges(ins)
        Compactor(live).compact()
        errors = []
        stop = threading.Event()

        def query():
            qrng = np.random.default_rng(5)
            try:
                while not stop.is_set():
                    rows = engine.get_embeddings(qrng.integers(0, 160, 8))
                    assert np.isfinite(rows).all()
            except Exception as exc:    # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=query) for _ in range(2)]
        for t in readers:
            t.start()
        try:
            for _ in range(3):
                trainer.refresh()
        finally:
            stop.set()
            for t in readers:
                t.join(timeout=60)
        assert not errors
        assert live.table_version.value % 2 == 0
        assert live.table_version.value > 0


# ---------------------------------------------------------------------------
# Durable stream job: crash + resume through the API (satellite)
# ---------------------------------------------------------------------------

class TestDurableStreamJob:
    def test_wal_run_reattaches_and_resumes_service(self, tmp_path):
        from repro.api import (DataSpec, JobSpec, ModelSpec, StorageSpec,
                               StreamSpec)
        from repro.api import run as api_run

        def spec(events, compact_every):
            return JobSpec(
                kind="stream",
                data=DataSpec(dataset="fb15k237", scale=0.02),
                model=ModelSpec(dim=8),
                storage=StorageSpec(partitions=4, buffer=2,
                                    workdir=str(tmp_path / "wd")),
                stream=StreamSpec(events=events, event_batch=200,
                                  compact_every=compact_every, verify=True,
                                  wal=True, background_compaction=True,
                                  lock_stripes=4))

        first = api_run(spec(600, 400))
        assert first["health"]["compaction"]["state"] in ("idle",
                                                          "compacting")
        assert (tmp_path / "wd" / "wal").is_dir()
        assert (tmp_path / "wd" / "stream-state.json").exists()
        # Second run over the same workdir: recovery reattaches the stores
        # and replays the journal instead of rebuilding from the dataset;
        # verify=True then proves the recovered view equals a rebuild.
        second = api_run(spec(300, 0))
        assert second["num_nodes"] >= first["num_nodes"]
        # Deletes can come up short when a sampled bucket is empty.
        assert 250 <= second["events_appended"] <= 300
