"""Crash-injection and bit-exact resume tests for the snapshot subsystem.

The contract under test (docs/checkpointing.md): a training run killed at
*any* registered :class:`~tests.faultinject.CrashPoint` and resumed from
the latest complete snapshot produces **bit-identical** final parameters to
an uninterrupted run — for the disk link prediction trainer, the disk node
classification trainer, and the deterministic pipelined trainer.

The crash-matrix tests are marked ``slow`` (each runs a crashed training,
a recovery training, and shares a module-scoped uninterrupted baseline).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.graph import load_fb15k237, load_papers100m_mini
from repro.storage import PrefetchError
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         DiskNodeClassificationConfig,
                         DiskNodeClassificationTrainer, LinkPredictionConfig,
                         LinkPredictionTrainer, NodeClassificationConfig,
                         NodeClassificationTrainer,
                         PipelinedLinkPredictionTrainer, SnapshotError,
                         SnapshotManager)
from tests.faultinject import (CrashPoint, FaultInjector, FaultyStorage,
                               SimulatedCrash)

CRASHES = (SimulatedCrash, PrefetchError)

LP_CFG = LinkPredictionConfig(embedding_dim=8, num_layers=1, fanouts=(4,),
                              batch_size=256, num_negatives=16, num_epochs=2,
                              eval_negatives=32, eval_max_edges=100, seed=0)
NC_CFG = NodeClassificationConfig(hidden_dim=8, num_layers=1, fanouts=(4,),
                                  batch_size=128, num_epochs=3, seed=0)


def _models_equal(a, b) -> bool:
    sa, sb = a.state_dict(), b.state_dict()
    return set(sa) == set(sb) and all(np.array_equal(sa[k], sb[k]) for k in sa)


# ---------------------------------------------------------------------------
# Snapshot format + atomicity protocol
# ---------------------------------------------------------------------------

class TestSnapshotManager:
    def _payload(self):
        return ({"epoch": 1, "note": "x"},
                {"a": np.arange(6, dtype=np.float32).reshape(2, 3)})

    def test_roundtrip_and_latest(self, tmp_path):
        mgr = SnapshotManager(tmp_path, keep=2)
        meta, arrays = self._payload()
        mgr.save(3, meta, arrays)
        mgr.save(7, {"epoch": 2}, arrays)
        got_meta, got_arrays = mgr.load()
        assert got_meta == {"epoch": 2}
        np.testing.assert_array_equal(got_arrays["a"], arrays["a"])
        assert mgr.latest().name == "snap-000000000007"
        assert [p.name for p in mgr.list()] == ["snap-000000000003",
                                                "snap-000000000007"]

    def test_keep_prunes_oldest(self, tmp_path):
        mgr = SnapshotManager(tmp_path, keep=2)
        meta, arrays = self._payload()
        for step in (1, 2, 3):
            mgr.save(step, meta, arrays)
        assert [p.name for p in mgr.list()] == ["snap-000000000002",
                                                "snap-000000000003"]

    def test_crc_rejects_torn_payload(self, tmp_path):
        mgr = SnapshotManager(tmp_path)
        meta, arrays = self._payload()
        snap = mgr.save(1, meta, arrays)
        payload = bytearray((snap / "arrays.npz").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (snap / "arrays.npz").write_bytes(bytes(payload))
        with pytest.raises(SnapshotError, match="CRC"):
            mgr.load()

    def test_version_mismatch_rejected(self, tmp_path):
        import json
        mgr = SnapshotManager(tmp_path)
        meta, arrays = self._payload()
        snap = mgr.save(1, meta, arrays)
        manifest = json.loads((snap / "manifest.json").read_text())
        manifest["version"] = 999
        (snap / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            mgr.load()

    @pytest.mark.parametrize("point", [CrashPoint.SNAPSHOT_BEGIN,
                                       CrashPoint.SNAPSHOT_PRE_RENAME])
    def test_crash_before_rename_preserves_previous(self, tmp_path, point):
        """A save killed before the atomic rename leaves only a tmp- dir;
        the previous snapshot stays the loadable latest and the debris is
        swept by the next successful save."""
        meta, arrays = self._payload()
        mgr = SnapshotManager(tmp_path)
        mgr.save(1, meta, arrays)
        inj = FaultInjector(point)
        mgr.fault_hook = inj.fire
        with pytest.raises(SimulatedCrash):
            mgr.save(2, {"epoch": 9}, arrays)
        assert mgr.latest().name == "snap-000000000001"
        assert mgr.load()[0] == meta
        mgr.fault_hook = None
        mgr.save(3, {"epoch": 10}, arrays)
        assert not list(tmp_path.glob("tmp-*"))

    def test_numeric_order_beyond_name_padding(self, tmp_path):
        """Step ids wider than the 12-digit zero padding must still sort
        newest-last (lexicographic order would prune the newest)."""
        meta, arrays = self._payload()
        mgr = SnapshotManager(tmp_path, keep=2)
        mgr.save(999_999_999_999, {"which": "padded"}, arrays)
        mgr.save(1_000_000_000_000, {"which": "wide"}, arrays)
        assert mgr.load()[0] == {"which": "wide"}
        mgr.save(1_000_000_000_001, {"which": "wider"}, arrays)
        assert [mgr._step_of(p) for p in mgr.list()] == [1_000_000_000_000,
                                                         1_000_000_000_001]

    def test_save_supersedes_stale_same_id(self, tmp_path):
        """A resumed run that re-reaches (or trails) step ids left by a
        crashed run must become latest() without touching the old
        directories (no replace window): its saves take fresh ordinals past
        everything on disk, and the stale timeline ages out via keep."""
        meta, arrays = self._payload()
        mgr = SnapshotManager(tmp_path, keep=2)
        mgr.save(5, {"run": "crashed"}, arrays)
        mgr.save(5, {"run": "resumed"}, arrays)
        assert mgr.load()[0] == {"run": "resumed"}
        mgr.save(3, {"run": "resumed-later"}, arrays)   # cursor behind old id
        assert mgr.load()[0] == {"run": "resumed-later"}
        assert len(mgr.list()) == 2


# ---------------------------------------------------------------------------
# Disk link prediction: crash matrix
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def lp_data():
    return load_fb15k237(scale=0.03, seed=0)


def make_disk_lp(data, workdir, **kw):
    disk = DiskConfig(workdir=workdir, num_partitions=8, num_logical=4,
                      buffer_capacity=4)
    return DiskLinkPredictionTrainer(data, LP_CFG, disk, **kw)


@pytest.fixture(scope="module")
def lp_baseline(lp_data, tmp_path_factory):
    """Uninterrupted run: final node table + trained model."""
    trainer = make_disk_lp(lp_data, tmp_path_factory.mktemp("lp-base"))
    trainer.train()
    return trainer.node_store.read_all(), trainer.model


def _recover(make_trainer):
    """Resume from the latest snapshot; restart from scratch if the crash
    landed before the first checkpoint (both are valid recoveries)."""
    trainer = make_trainer()
    try:
        trainer.resume()
    except SnapshotError:
        pass
    trainer.train()
    return trainer


@pytest.mark.slow
@pytest.mark.parametrize("point,after", [
    (CrashPoint.NODE_READ, 10),
    (CrashPoint.NODE_WRITE, 6),
    (CrashPoint.SWAP_EVICTED, 3),
    (CrashPoint.PREFETCH_STAGED, 2),
    (CrashPoint.SNAPSHOT_BEGIN, 1),
    (CrashPoint.SNAPSHOT_PRE_RENAME, 1),
    (CrashPoint.SNAPSHOT_POST_RENAME, 1),
])
def test_disk_lp_crash_matrix(lp_data, lp_baseline, tmp_path, point, after):
    """Kill mid-swap / mid-snapshot / between prefetch load and apply; the
    resumed run must reach bit-identical final parameters."""
    injector = FaultInjector(point, after=after)
    crashed = make_disk_lp(lp_data, tmp_path / "crashed",
                           checkpoint_dir=tmp_path / "ckpt",
                           checkpoint_every=1)
    FaultyStorage(crashed.node_store, injector)
    crashed.buffer_manager.fault_hook = injector.fire
    crashed.snapshots.fault_hook = injector.fire
    with pytest.raises(CRASHES):
        crashed.train()
    assert injector.fired, f"crash point {point} never hit"

    resumed = _recover(lambda: make_disk_lp(
        lp_data, tmp_path / "resumed", checkpoint_dir=tmp_path / "ckpt",
        checkpoint_every=1))
    ref_table, ref_model = lp_baseline
    np.testing.assert_array_equal(resumed.node_store.read_all(), ref_table)
    assert _models_equal(resumed.model, ref_model)


@pytest.mark.slow
def test_disk_lp_torn_write_not_restored(lp_data, tmp_path):
    """A write-back torn by the crash leaves NaNs in the workdir memmap;
    resume() rewrites the store wholesale from the snapshot, so no NaN can
    survive into the recovered table."""
    injector = FaultInjector(CrashPoint.NODE_WRITE, after=4)
    crashed = make_disk_lp(lp_data, tmp_path / "w", checkpoint_dir=tmp_path / "c",
                           checkpoint_every=1)
    FaultyStorage(crashed.node_store, injector)
    with pytest.raises(CRASHES):
        crashed.train()
    assert np.isnan(crashed.node_store.read_all()).any()

    resumed = make_disk_lp(lp_data, tmp_path / "w2",
                           checkpoint_dir=tmp_path / "c")
    resumed.resume()
    assert not np.isnan(resumed.node_store.read_all()).any()
    assert not np.isnan(resumed.buffer.gather(
        resumed.buffer.resident_nodes())).any()


# ---------------------------------------------------------------------------
# Disk node classification: crash + resume
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def nc_data():
    return load_papers100m_mini(num_nodes=800, num_edges=6400, feat_dim=8,
                                num_classes=5, seed=0)


def make_disk_nc(data, workdir, **kw):
    disk = DiskNodeClassificationConfig(workdir=workdir, num_partitions=8,
                                        buffer_capacity=4)
    return DiskNodeClassificationTrainer(data, NC_CFG, disk, **kw)


@pytest.fixture(scope="module")
def nc_baseline(nc_data, tmp_path_factory):
    trainer = make_disk_nc(nc_data, tmp_path_factory.mktemp("nc-base"))
    trainer.train()
    return trainer.model


@pytest.mark.slow
@pytest.mark.parametrize("point,after", [
    # 4 reads fill the buffer in epoch 0; the 5th is a later epoch's swap.
    (CrashPoint.NODE_READ, 4),
    (CrashPoint.SNAPSHOT_PRE_RENAME, 1),
    (CrashPoint.SNAPSHOT_POST_RENAME, 1),
])
def test_disk_nc_crash_matrix(nc_data, nc_baseline, tmp_path, point, after):
    injector = FaultInjector(point, after=after)
    crashed = make_disk_nc(nc_data, tmp_path / "crashed",
                           checkpoint_dir=tmp_path / "ckpt",
                           checkpoint_every=1)
    FaultyStorage(crashed.node_store, injector)
    crashed.snapshots.fault_hook = injector.fire
    with pytest.raises(CRASHES):
        crashed.train()
    assert injector.fired, f"crash point {point} never hit"

    resumed = _recover(lambda: make_disk_nc(
        nc_data, tmp_path / "resumed", checkpoint_dir=tmp_path / "ckpt",
        checkpoint_every=1))
    assert _models_equal(resumed.model, nc_baseline)


# ---------------------------------------------------------------------------
# Pipelined trainer: quiesce → drain → snapshot → refill
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def pipelined_baseline(lp_data):
    trainer = PipelinedLinkPredictionTrainer(lp_data, LP_CFG,
                                             num_sample_workers=2,
                                             deterministic=True)
    trainer.train()
    return trainer


@pytest.mark.slow
@pytest.mark.parametrize("point", [CrashPoint.SNAPSHOT_PRE_RENAME,
                                   CrashPoint.SNAPSHOT_POST_RENAME])
def test_pipelined_mid_epoch_crash(lp_data, pipelined_baseline, tmp_path, point):
    """Kill the pipeline mid-epoch (checkpoints land every 5 consumed
    batches); in-flight sampled batches die with the process and are
    re-sampled identically on resume thanks to per-batch seeding."""
    injector = FaultInjector(point, after=1)
    crashed = PipelinedLinkPredictionTrainer(
        lp_data, LP_CFG, num_sample_workers=2, deterministic=True,
        checkpoint_dir=tmp_path / "ckpt", checkpoint_every=5)
    crashed.snapshots.fault_hook = injector.fire
    with pytest.raises(SimulatedCrash):
        crashed.train()
    assert injector.fired

    resumed = _recover(lambda: PipelinedLinkPredictionTrainer(
        lp_data, LP_CFG, num_sample_workers=2, deterministic=True,
        checkpoint_dir=tmp_path / "ckpt", checkpoint_every=5))
    np.testing.assert_array_equal(resumed.embeddings.table,
                                  pipelined_baseline.embeddings.table)
    assert _models_equal(resumed.model, pipelined_baseline.model)


def test_pipelined_deterministic_worker_invariance(lp_data):
    """Deterministic mode is a pure function of the seed: worker count and
    scheduling cannot change the result (per-batch seeding + ordered
    reassembly + inline write-back)."""
    one = PipelinedLinkPredictionTrainer(lp_data, LP_CFG,
                                         num_sample_workers=1,
                                         deterministic=True)
    one.train()
    three = PipelinedLinkPredictionTrainer(lp_data, LP_CFG,
                                           num_sample_workers=3,
                                           deterministic=True)
    three.train()
    np.testing.assert_array_equal(one.embeddings.table, three.embeddings.table)
    assert _models_equal(one.model, three.model)


# ---------------------------------------------------------------------------
# Determinism golden tests: checkpoint at epoch 1 of 3, resume, compare
# ---------------------------------------------------------------------------

def _three_epochs(cfg):
    return dataclasses.replace(cfg, num_epochs=3)


def _one_epoch(cfg):
    return dataclasses.replace(cfg, num_epochs=1)


@pytest.mark.slow
def test_golden_disk_lp_epoch_boundary(lp_data, tmp_path):
    cfg3, cfg1 = _three_epochs(LP_CFG), _one_epoch(LP_CFG)
    disk = lambda d: DiskConfig(workdir=tmp_path / d, num_partitions=8,
                                num_logical=4, buffer_capacity=4)
    straight = DiskLinkPredictionTrainer(lp_data, cfg3, disk("a"))
    straight.train()

    first = DiskLinkPredictionTrainer(lp_data, cfg1, disk("b"),
                                      checkpoint_dir=tmp_path / "ckpt")
    first.train()
    first.save_snapshot(1, 0, 1)

    second = DiskLinkPredictionTrainer(lp_data, cfg3, disk("c"),
                                       checkpoint_dir=tmp_path / "ckpt")
    meta = second.resume()
    assert (meta["epoch"], meta["step"]) == (1, 0)
    second.train()
    np.testing.assert_array_equal(second.node_store.read_all(),
                                  straight.node_store.read_all())
    assert _models_equal(second.model, straight.model)


@pytest.mark.slow
def test_golden_disk_nc_epoch_boundary(nc_data, tmp_path):
    cfg3, cfg1 = _three_epochs(NC_CFG), _one_epoch(NC_CFG)
    disk = lambda d: DiskNodeClassificationConfig(workdir=tmp_path / d,
                                                  num_partitions=8,
                                                  buffer_capacity=4)
    straight = DiskNodeClassificationTrainer(nc_data, cfg3, disk("a"))
    straight.train()

    first = DiskNodeClassificationTrainer(nc_data, cfg1, disk("b"),
                                          checkpoint_dir=tmp_path / "ckpt")
    first.train()
    first.save_snapshot(1, 0, 1)

    second = DiskNodeClassificationTrainer(nc_data, cfg3, disk("c"),
                                           checkpoint_dir=tmp_path / "ckpt")
    meta = second.resume()
    assert (meta["epoch"], meta["step"]) == (1, 0)
    second.train()
    assert _models_equal(second.model, straight.model)


@pytest.mark.slow
def test_golden_pipelined_epoch_boundary(lp_data, tmp_path):
    cfg3, cfg1 = _three_epochs(LP_CFG), _one_epoch(LP_CFG)
    straight = PipelinedLinkPredictionTrainer(lp_data, cfg3,
                                              num_sample_workers=2,
                                              deterministic=True)
    straight.train()

    first = PipelinedLinkPredictionTrainer(lp_data, cfg1,
                                           num_sample_workers=2,
                                           deterministic=True,
                                           checkpoint_dir=tmp_path / "ckpt")
    first.train()
    first.save_snapshot(0, 1, 1, None)   # normalizes to (epoch 1, batch 0)

    second = PipelinedLinkPredictionTrainer(lp_data, cfg3,
                                            num_sample_workers=2,
                                            deterministic=True,
                                            checkpoint_dir=tmp_path / "ckpt")
    meta = second.resume()
    assert (meta["epoch"], meta["batch"]) == (1, 0)
    second.train()
    np.testing.assert_array_equal(second.embeddings.table,
                                  straight.embeddings.table)
    assert _models_equal(second.model, straight.model)


@pytest.fixture(scope="module")
def nc_mem_baseline(nc_data):
    trainer = NodeClassificationTrainer(nc_data, NC_CFG)
    trainer.train()
    return trainer.model


@pytest.mark.slow
@pytest.mark.parametrize("point", [CrashPoint.SNAPSHOT_BEGIN,
                                   CrashPoint.SNAPSHOT_PRE_RENAME,
                                   CrashPoint.SNAPSHOT_POST_RENAME])
def test_in_memory_nc_crash_matrix(nc_data, nc_mem_baseline, tmp_path, point):
    """The in-memory NC trainer (epoch-granularity snapshots, the last
    trainer to join the subsystem) killed mid-save must recover
    bit-identically: either from the surviving snapshot or — when the
    crash landed before the first complete save — from scratch."""
    injector = FaultInjector(point, after=1)
    crashed = NodeClassificationTrainer(nc_data, NC_CFG,
                                        checkpoint_dir=tmp_path / "ckpt",
                                        checkpoint_every=1)
    crashed.snapshots.fault_hook = injector.fire
    with pytest.raises(SimulatedCrash):
        crashed.train()
    assert injector.fired, f"crash point {point} never hit"

    resumed = _recover(lambda: NodeClassificationTrainer(
        nc_data, NC_CFG, checkpoint_dir=tmp_path / "ckpt",
        checkpoint_every=1))
    assert _models_equal(resumed.model, nc_mem_baseline)


def test_golden_in_memory_nc(nc_data, tmp_path):
    """Epoch-boundary resume of the in-memory NC trainer is bit-identical
    to the uninterrupted run (closes the ROADMAP NC-resume item)."""
    cfg3, cfg1 = _three_epochs(NC_CFG), _one_epoch(NC_CFG)
    straight = NodeClassificationTrainer(nc_data, cfg3)
    straight.train()

    first = NodeClassificationTrainer(nc_data, cfg1,
                                      checkpoint_dir=tmp_path / "ckpt",
                                      checkpoint_every=1)
    first.train()
    second = NodeClassificationTrainer(nc_data, cfg3,
                                       checkpoint_dir=tmp_path / "ckpt")
    assert second.resume()["epoch"] == 1
    second.train()
    assert _models_equal(second.model, straight.model)


def test_nc_mem_resume_rejects_changed_dataset(nc_data, tmp_path):
    first = NodeClassificationTrainer(nc_data, _one_epoch(NC_CFG),
                                      checkpoint_dir=tmp_path / "ckpt",
                                      checkpoint_every=1)
    first.train()
    other = load_papers100m_mini(num_nodes=800, num_edges=6400, feat_dim=8,
                                 num_classes=5, seed=3)
    second = NodeClassificationTrainer(other, _one_epoch(NC_CFG),
                                       checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(SnapshotError, match="dataset"):
        second.resume()


def test_golden_in_memory_lp(lp_data, tmp_path):
    """The in-memory trainer shares the subsystem (epoch cadence)."""
    cfg3, cfg1 = _three_epochs(LP_CFG), _one_epoch(LP_CFG)
    straight = LinkPredictionTrainer(lp_data, cfg3)
    straight.train()

    first = LinkPredictionTrainer(lp_data, cfg1,
                                  checkpoint_dir=tmp_path / "ckpt",
                                  checkpoint_every=1)
    first.train()
    second = LinkPredictionTrainer(lp_data, cfg3,
                                   checkpoint_dir=tmp_path / "ckpt")
    assert second.resume()["epoch"] == 1
    second.train()
    np.testing.assert_array_equal(second.embeddings.table,
                                  straight.embeddings.table)
    assert _models_equal(second.model, straight.model)


# ---------------------------------------------------------------------------
# Snapshot hygiene: wrong-trainer / wrong-layout snapshots are rejected
# ---------------------------------------------------------------------------

def test_resume_rejects_wrong_trainer(lp_data, tmp_path):
    cfg1 = _one_epoch(LP_CFG)
    mem = LinkPredictionTrainer(lp_data, cfg1, checkpoint_dir=tmp_path / "ckpt",
                                checkpoint_every=1)
    mem.train()
    disk = make_disk_lp(lp_data, tmp_path / "w", checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(SnapshotError, match="trainer"):
        disk.resume()


def test_resume_rejects_changed_config(lp_data, tmp_path):
    """Cursors and rng states are only meaningful under the config that
    produced them: resuming with a different batch size would re-train some
    edges and desync the seeds, so it must be refused up front. Fields that
    only extend or re-report the run (num_epochs, eval cadence) may change."""
    cfg1 = _one_epoch(LP_CFG)
    first = LinkPredictionTrainer(lp_data, cfg1,
                                  checkpoint_dir=tmp_path / "ckpt",
                                  checkpoint_every=1)
    first.train()
    smaller_batches = dataclasses.replace(cfg1, num_epochs=3, batch_size=128)
    second = LinkPredictionTrainer(lp_data, smaller_batches,
                                   checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(SnapshotError, match="batch_size"):
        second.resume()
    longer = dataclasses.replace(cfg1, num_epochs=3, eval_max_edges=50)
    third = LinkPredictionTrainer(lp_data, longer,
                                  checkpoint_dir=tmp_path / "ckpt")
    assert third.resume()["epoch"] == 1


def test_racy_pipeline_rejects_mid_epoch_snapshot(lp_data, tmp_path):
    """A mid-epoch cut is only replayable under per-batch seeding; the racy
    pipeline must refuse it instead of resuming into divergence."""
    first = PipelinedLinkPredictionTrainer(
        lp_data, _one_epoch(LP_CFG), num_sample_workers=2, deterministic=True,
        checkpoint_dir=tmp_path / "ckpt", checkpoint_every=5)
    first._train_epoch(0, lp_data.split.train)   # leaves mid-epoch snapshots
    racy = PipelinedLinkPredictionTrainer(
        lp_data, LP_CFG, num_sample_workers=2,
        checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(SnapshotError, match="deterministic"):
        racy.resume()


def test_resume_rejects_changed_dataset(lp_data, tmp_path):
    """The in-memory trainers have no store fingerprints; the dataset
    fingerprint must keep a resume from silently continuing on different
    training data of compatible shape."""
    cfg1 = _one_epoch(LP_CFG)
    first = LinkPredictionTrainer(lp_data, cfg1,
                                  checkpoint_dir=tmp_path / "ckpt",
                                  checkpoint_every=1)
    first.train()
    other_data = load_fb15k237(scale=0.03, seed=7)
    second = LinkPredictionTrainer(other_data, cfg1,
                                   checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(SnapshotError, match="dataset"):
        second.resume()


def test_resume_rejects_changed_partitioning(lp_data, tmp_path):
    cfg1 = _one_epoch(LP_CFG)
    a = make_disk_lp(lp_data, tmp_path / "a", checkpoint_dir=tmp_path / "ckpt",
                     checkpoint_every=1)
    a.train()
    other = DiskLinkPredictionTrainer(
        lp_data, cfg1,
        DiskConfig(workdir=tmp_path / "b", num_partitions=4, num_logical=2,
                   buffer_capacity=4),
        checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(SnapshotError, match="layout"):
        other.resume()


# ---------------------------------------------------------------------------
# Incremental (dirty-partition-only) snapshots — disk LP trainer
# ---------------------------------------------------------------------------

class TestIncrementalSnapshots:
    """CheckpointSpec(incremental=True): the first save is a full base,
    later saves carry only partitions touched since it as delta row spans,
    the manifest chains to the base, and load() composes the chain
    transparently (CRC-verified per member)."""

    def _twins(self, lp_data, tmp_path, every=1, keep=100):
        full = make_disk_lp(lp_data, tmp_path / "full-w",
                            checkpoint_dir=tmp_path / "full-c",
                            checkpoint_every=every)
        inc = make_disk_lp(lp_data, tmp_path / "inc-w",
                           checkpoint_dir=tmp_path / "inc-c",
                           checkpoint_every=every,
                           checkpoint_incremental=True)
        full.snapshots.keep = keep
        inc.snapshots.keep = keep
        return full, inc

    def test_deltas_chain_and_compose_to_the_full_payload(self, lp_data,
                                                          tmp_path):
        full, inc = self._twins(lp_data, tmp_path)
        full.train()
        inc.train()
        full_snaps, inc_snaps = full.snapshots.list(), inc.snapshots.list()
        assert len(full_snaps) == len(inc_snaps) >= 2

        base_name = inc_snaps[0].name
        manifest = json.loads((inc_snaps[1] / "manifest.json").read_text())
        assert manifest["base"] == base_name
        _, raw = inc.snapshots.load(inc_snaps[1], compose=False)
        assert any(k.startswith("delta/node_table/") for k in raw)
        assert "node_table" not in raw      # the delta carries no full table

        # Checkpoint format never changes the math: at every cursor, the
        # composed incremental payload equals the full trainer's snapshot.
        for full_snap, inc_snap in zip(full_snaps, inc_snaps):
            ref_meta, ref = full.snapshots.load(full_snap)
            got_meta, got = inc.snapshots.load(inc_snap)
            assert (ref_meta["epoch"], ref_meta["step"]) == (
                got_meta["epoch"], got_meta["step"])
            assert set(ref) == set(got)
            for key in ref:
                np.testing.assert_array_equal(ref[key], got[key],
                                              err_msg=key)

    def test_deltas_are_smaller_than_full_snapshots(self, lp_data, tmp_path):
        full, inc = self._twins(lp_data, tmp_path)
        full.train()
        inc.train()
        sizes = lambda snaps: [
            (p / "arrays.npz").stat().st_size for p in snaps]
        full_sizes, inc_sizes = (sizes(full.snapshots.list()),
                                 sizes(inc.snapshots.list()))
        # Base ~= a full snapshot; at least one delta must beat the full
        # format (touched partitions < all partitions at some cursor).
        assert min(inc_sizes[1:]) < min(full_sizes)

    def test_prune_keeps_the_chained_base_alive(self, lp_data, tmp_path):
        inc = make_disk_lp(lp_data, tmp_path / "w",
                           checkpoint_dir=tmp_path / "c",
                           checkpoint_every=1, checkpoint_incremental=True)
        inc.snapshots.keep = 2
        inc.train()
        snaps = inc.snapshots.list()
        names = {p.name for p in snaps}
        bases = {json.loads((p / "manifest.json").read_text()).get("base")
                 for p in snaps} - {None}
        assert bases and bases <= names     # every referenced base survives
        # ...and the latest (a delta) still composes after pruning.
        meta, arrays = inc.snapshots.load()
        assert arrays["node_table"].shape == (
            inc.node_store.num_nodes, inc.config.embedding_dim)

    def test_open_snapshot_serves_composed_delta(self, lp_data, tmp_path):
        """restore_for_inference over a delta snapshot sees the full table."""
        from repro.train import restore_for_inference
        inc = make_disk_lp(lp_data, tmp_path / "w",
                           checkpoint_dir=tmp_path / "c",
                           checkpoint_every=1, checkpoint_incremental=True)
        inc.train()
        latest = inc.snapshots.latest()
        assert json.loads((latest / "manifest.json").read_text())["base"]
        restore = restore_for_inference(latest)
        assert restore.node_table.shape == (inc.node_store.num_nodes,
                                            inc.config.embedding_dim)

    def test_resume_from_delta_continues_the_chain(self, lp_data, tmp_path):
        cfg1 = _one_epoch(LP_CFG)
        disk = DiskConfig(workdir=tmp_path / "w", num_partitions=8,
                          num_logical=4, buffer_capacity=4)
        first = DiskLinkPredictionTrainer(lp_data, cfg1, disk,
                                          checkpoint_dir=tmp_path / "c",
                                          checkpoint_every=1,
                                          checkpoint_incremental=True)
        first.snapshots.keep = 100
        first.train()
        latest = first.snapshots.latest()
        assert json.loads((latest / "manifest.json").read_text()).get("base")

        second = DiskLinkPredictionTrainer(
            lp_data, _three_epochs(LP_CFG),
            DiskConfig(workdir=tmp_path / "w2", num_partitions=8,
                       num_logical=4, buffer_capacity=4),
            checkpoint_dir=tmp_path / "c", checkpoint_every=1,
            checkpoint_incremental=True)
        second.snapshots.keep = 100
        meta = second.resume()
        assert second._ckpt_base == meta["incremental"]["base"]
        count_before = len(second.snapshots.list())
        second.train()
        snaps = second.snapshots.list()
        assert len(snaps) > count_before
        # The chain stays active across the resume: every new snapshot is
        # either a delta naming a live sibling base, or a legitimate
        # re-base (touched set covered every partition) that later deltas
        # chain to — and the latest always composes to a full payload.
        assert second._ckpt_base is not None
        names = {p.name for p in snaps}
        for snap in snaps[count_before:]:
            base = json.loads((snap / "manifest.json").read_text()).get("base")
            assert base is None or base in names
        _, arrays = second.snapshots.load()
        assert arrays["node_table"].shape == (
            second.node_store.num_nodes, second.config.embedding_dim)

    def test_foreign_resume_falls_back_to_a_full_save(self, lp_data,
                                                      tmp_path):
        """Resuming from a snapshot outside the trainer's own checkpoint
        root cannot chain to it — the next save must be full."""
        first = make_disk_lp(lp_data, tmp_path / "w",
                             checkpoint_dir=tmp_path / "foreign",
                             checkpoint_every=0,
                             checkpoint_incremental=True)
        first.train()
        first.save_snapshot(LP_CFG.num_epochs, 0, 1)

        second = make_disk_lp(lp_data, tmp_path / "w2",
                              checkpoint_dir=tmp_path / "own",
                              checkpoint_every=0,
                              checkpoint_incremental=True)
        second.resume(first.snapshots.latest())
        assert second._ckpt_base is None
        path = second.save_snapshot(LP_CFG.num_epochs, 0, 1)
        assert "base" not in json.loads((path / "manifest.json").read_text())
        assert second._ckpt_base == path.name   # ...and becomes the new base


@pytest.mark.slow
@pytest.mark.parametrize("point,after", [
    (CrashPoint.NODE_WRITE, 6),
    (CrashPoint.SWAP_EVICTED, 3),
    (CrashPoint.SNAPSHOT_PRE_RENAME, 2),
    (CrashPoint.SNAPSHOT_POST_RENAME, 2),
])
def test_disk_lp_incremental_crash_matrix(lp_data, lp_baseline, tmp_path,
                                          point, after):
    """The crash matrix holds under incremental snapshots: a run killed
    mid-swap or mid-(delta-)snapshot and resumed from the composed chain
    reaches bit-identical final parameters."""
    injector = FaultInjector(point, after=after)
    crashed = make_disk_lp(lp_data, tmp_path / "crashed",
                           checkpoint_dir=tmp_path / "ckpt",
                           checkpoint_every=1, checkpoint_incremental=True)
    FaultyStorage(crashed.node_store, injector)
    crashed.buffer_manager.fault_hook = injector.fire
    crashed.snapshots.fault_hook = injector.fire
    with pytest.raises(CRASHES):
        crashed.train()
    assert injector.fired, f"crash point {point} never hit"

    resumed = _recover(lambda: make_disk_lp(
        lp_data, tmp_path / "resumed", checkpoint_dir=tmp_path / "ckpt",
        checkpoint_every=1, checkpoint_incremental=True))
    ref_table, ref_model = lp_baseline
    np.testing.assert_array_equal(resumed.node_store.read_all(), ref_table)
    assert _models_equal(resumed.model, ref_model)
