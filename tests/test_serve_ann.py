"""ANN top-k vs the exact oracle, plus the exact sweep's own contracts.

The load-bearing guarantees:

* **Recall property** — the pruned (IVF cluster bound) sweep reaches
  recall@k >= 0.95 against the exact oracle across table sizes, skewed
  and clustered embeddings, `exclude` lists, every shipped decoder, and
  post-growth live views (the bound is sound, so in practice recall is
  1.0; the floor is the asserted worst-case contract).
* **Exact oracle parity** — `exact=True` equals scoring every node
  offline, with ties broken deterministically by ascending node id.
* **Residency determinism** — the same query returns the same ids under
  different buffer-residency states (regression for the unstable
  argpartition truncation).
* **Clamp contract** — the result width is `min(k, candidates)` where
  candidates excludes the `exclude` list; over a live view the clamp
  reads the dynamic scheme, so grown nodes are rankable immediately.
"""

import numpy as np
import pytest

from repro.graph.edge_list import Graph
from repro.graph.partition import PartitionScheme
from repro.nn.tensor import Tensor
from repro.serve import AnnIndex, RequestBatcher, ServingEngine
from repro.storage import NodeStore
from repro.storage.edge_store import EdgeBucketStore
from repro.stream import LiveGraph
from repro.train import LinkPredictionConfig, LinkPredictionModel


def make_table(num_nodes, dim, kind, seed=0):
    """Candidate tables the index must handle: uniform noise (clusters
    barely help — the worst case for pruning, recall must still hold) and
    a Gaussian mixture (the shape trained embeddings actually take)."""
    rng = np.random.default_rng(seed)
    if kind == "uniform":
        return rng.uniform(-1, 1, size=(num_nodes, dim)).astype(np.float32)
    if kind == "clustered":
        centers = rng.normal(0, 1.0, size=(12, dim))
        assign = rng.integers(0, len(centers), num_nodes)
        table = centers[assign] + rng.normal(0, 0.05, size=(num_nodes, dim))
        return table.astype(np.float32)
    if kind == "blocked":
        # Clusters contiguous in the id space — the shape partitioned
        # training produces (partition ~ community), where whole-partition
        # pruning pays off.
        centers = rng.normal(0, 1.0, size=(12, dim))
        assign = np.sort(rng.integers(0, len(centers), num_nodes))
        table = centers[assign] + rng.normal(0, 0.05, size=(num_nodes, dim))
        return table.astype(np.float32)
    if kind == "skewed":        # heavy-tailed row norms
        table = rng.normal(0, 1, size=(num_nodes, dim))
        table *= rng.pareto(2.0, size=(num_nodes, 1)) + 0.1
        return table.astype(np.float32)
    raise ValueError(kind)


def make_engine(tmp_path, table, p, capacity, decoder="distmult",
                num_relations=3, name="serve", **kw):
    num_nodes, dim = table.shape
    scheme = PartitionScheme.uniform(num_nodes, p)
    store = NodeStore(tmp_path / f"{name}.bin", scheme, dim, learnable=False)
    store.initialize(values=table)
    cfg = LinkPredictionConfig(embedding_dim=dim, encoder="none",
                               decoder=decoder, seed=0)
    model = LinkPredictionModel(cfg, num_relations,
                                rng=np.random.default_rng(3))
    return ServingEngine(model, store, capacity, **kw)


def oracle_topk(engine, table, src, k, rel=0, exclude=()):
    """Top-k by scoring the full table in one pass, ties broken by id —
    the independent definition both sweeps must reproduce."""
    decoder = engine.decoder
    scores = decoder.score_against(Tensor(table[[src]]),
                                   np.array([rel], dtype=np.int64),
                                   Tensor(table)).data[0]
    keep = np.ones(len(table), dtype=bool)
    for x in exclude:
        if 0 <= int(x) < len(table):
            keep[int(x)] = False
    ids = np.flatnonzero(keep)
    order = np.lexsort((ids, -scores[ids]))
    ids = ids[order][:k]
    return ids, scores[ids]


def recall_at_k(got_ids, want_ids):
    if len(want_ids) == 0:
        return 1.0
    return len(np.intersect1d(got_ids, want_ids)) / len(want_ids)


# ---------------------------------------------------------------------------
# Recall property: ANN vs exact across tables, decoders, excludes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["uniform", "clustered", "blocked", "skewed"])
@pytest.mark.parametrize("num_nodes,p", [(400, 4), (2000, 8)])
def test_ann_recall_floor_against_exact(tmp_path, kind, num_nodes, p):
    table = make_table(num_nodes, 16, kind, seed=num_nodes + p)
    engine = make_engine(tmp_path, table, p, capacity=2)
    rng = np.random.default_rng(9)
    srcs = rng.integers(0, num_nodes, 6)
    excludes = [(), tuple(int(x) for x in srcs),
                tuple(int(x) for x in rng.integers(0, num_nodes, 40))]
    for exclude in excludes:
        ids_x, sc_x = engine.topk_targets_batch(srcs, 10, rel=1,
                                                exclude=exclude, exact=True)
        ids_a, sc_a = engine.topk_targets_batch(srcs, 10, rel=1,
                                                exclude=exclude)
        for row in range(len(srcs)):
            assert recall_at_k(ids_a[row], ids_x[row]) >= 0.95
        # Score values agree even where a float tie might swap ids.
        np.testing.assert_allclose(sc_a, sc_x, atol=1e-5)
        for x in exclude:
            assert x not in ids_a


@pytest.mark.parametrize("decoder,num_relations",
                         [("distmult", 3), ("dot", 1), ("complex", 3)])
def test_ann_recall_every_decoder(tmp_path, decoder, num_relations):
    table = make_table(600, 16, "clustered", seed=5)
    engine = make_engine(tmp_path, table, 6, capacity=2, decoder=decoder,
                         num_relations=num_relations)
    srcs = [0, 99, 300, 599]
    ids_x, sc_x = engine.topk_targets_batch(srcs, 10, exact=True)
    ids_a, sc_a = engine.topk_targets_batch(srcs, 10)
    for row in range(len(srcs)):
        assert recall_at_k(ids_a[row], ids_x[row]) >= 0.95
    np.testing.assert_allclose(sc_a, sc_x, atol=1e-5)


def test_ann_prunes_partitions_on_clustered_data(tmp_path):
    """The point of the index: on clusterable tables whole partitions are
    skipped without being paged in, and only a fraction of rows is ever
    scored. (Correctness is covered above; this pins the sublinearity.)"""
    table = make_table(4000, 16, "blocked", seed=11)
    engine = make_engine(tmp_path, table, 16, capacity=4)
    engine.topk_targets_batch([5, 1000], 10)
    s = engine.stats
    assert s.topk_parts_pruned > 0
    assert s.topk_parts_scanned < 16
    assert 0 < s.ann_rows_scored < 4000
    # The skipped partitions were never paged through the buffer.
    assert s.swaps <= s.topk_parts_scanned + engine.buffer.capacity


def test_ann_index_rebuilds_lazily_and_on_invalidate(tmp_path):
    table = make_table(300, 8, "clustered", seed=2)
    engine = make_engine(tmp_path, table, 3, capacity=2)
    assert engine.ann_index is None            # no top-k yet -> no build
    engine.get_embeddings(np.arange(10))
    assert engine.ann_index is None
    engine.topk_targets(0, 5)
    index = engine.ann_index
    assert index is not None
    st = index.stats()
    assert st["partitions_built"] == 3 and st["partitions_stale"] == 0
    builds = st["builds"]
    index.invalidate([1])
    engine.topk_targets(0, 5)
    assert index.stats()["builds"] == builds + 1   # only the stale one


def test_ann_disabled_and_exact_flag_never_build(tmp_path):
    table = make_table(200, 8, "uniform", seed=3)
    off = make_engine(tmp_path, table, 2, capacity=2, name="off", ann=False)
    off.topk_targets(0, 5)
    assert off.ann_index is None and off.stats.topk_parts_pruned == 0
    on = make_engine(tmp_path, table, 2, capacity=2, name="on")
    on.topk_targets(0, 5, exact=True)
    assert on.ann_index is None                # escape hatch stays cheap


def test_empty_partitions_and_tiny_tables(tmp_path):
    # A scheme with an empty middle partition: the index must carry a
    # zero-cluster cell and both sweeps must skip it cleanly.
    table = make_table(10, 4, "uniform", seed=4)
    scheme = PartitionScheme(10, 3, np.array([0, 5, 5, 10], dtype=np.int64))
    store = NodeStore(tmp_path / "t.bin", scheme, 4, learnable=False)
    store.initialize(values=table)
    cfg = LinkPredictionConfig(embedding_dim=4, encoder="none", seed=0)
    model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(3))
    engine = ServingEngine(model, store, 2)
    ids_x, _ = engine.topk_targets(0, 5, exact=True)
    ids_a, _ = engine.topk_targets(0, 5)
    np.testing.assert_array_equal(ids_x, ids_a)
    assert len(ids_x) == 5


# ---------------------------------------------------------------------------
# Exact oracle parity + deterministic ties (satellite bugfixes)
# ---------------------------------------------------------------------------

def test_exact_matches_offline_oracle(tmp_path):
    table = make_table(500, 8, "uniform", seed=6)
    engine = make_engine(tmp_path, table, 5, capacity=2)
    for src, rel, exclude in [(0, 0, ()), (7, 2, (7, 123, 456)),
                              (42, 1, tuple(range(100)))]:
        want_ids, want_sc = oracle_topk(engine, table, src, 12, rel=rel,
                                        exclude=exclude)
        ids, sc = engine.topk_targets(src, 12, rel=rel, exclude=exclude,
                                      exact=True)
        np.testing.assert_array_equal(ids, want_ids)
        np.testing.assert_array_equal(sc, want_sc)


def test_tied_scores_break_by_node_id(tmp_path):
    """Duplicate rows produce exactly tied scores; the k boundary must
    prefer the smaller node id, on both sweeps."""
    base = make_table(4, 8, "uniform", seed=7)
    table = base[np.zeros(96, dtype=np.int64)].copy()   # 96 identical rows
    engine = make_engine(tmp_path, table, 8, capacity=2)
    ids_x, _ = engine.topk_targets(0, 10, exact=True)
    np.testing.assert_array_equal(ids_x, np.arange(10))
    ids_a, _ = engine.topk_targets(0, 10)
    np.testing.assert_array_equal(ids_a, np.arange(10))


def test_topk_deterministic_across_residency_states(tmp_path):
    """Regression (unstable argpartition truncation): which tied-score
    candidate survived the running best-k depended on partition visit
    order, which follows buffer residency — the same query could answer
    differently depending on cache state."""
    rng = np.random.default_rng(8)
    distinct = rng.uniform(-1, 1, size=(3, 8)).astype(np.float32)
    table = distinct[rng.integers(0, 3, 120)]           # ties everywhere
    engine_cold = make_engine(tmp_path, table, 8, capacity=3, name="cold")
    ids_cold, sc_cold = engine_cold.topk_targets(0, 7, exact=True)

    engine_warm = make_engine(tmp_path, table, 8, capacity=3, name="warm")
    # Warm partitions 5 and 6 first: _partition_order now starts there.
    warm_ids = np.concatenate([engine_warm.scheme.partition_nodes(5)[:2],
                               engine_warm.scheme.partition_nodes(6)[:2]])
    engine_warm.get_embeddings(warm_ids)
    assert engine_warm.buffer.resident != engine_cold.buffer.resident
    ids_warm, sc_warm = engine_warm.topk_targets(0, 7, exact=True)

    np.testing.assert_array_equal(ids_cold, ids_warm)
    np.testing.assert_array_equal(sc_cold, sc_warm)
    # The ANN path ignores residency for its visit order entirely.
    ids_ann, _ = engine_warm.topk_targets(0, 7)
    np.testing.assert_array_equal(ids_ann, ids_cold)


def test_k_clamps_to_candidate_count_net_of_exclude(tmp_path):
    table = make_table(60, 8, "uniform", seed=9)
    engine = make_engine(tmp_path, table, 4, capacity=2)
    # k past the table: width is the candidate count, not num_nodes.
    exclude = list(range(10)) + [-5, 999, 4, 4]   # dups + out-of-range noise
    ids, sc = engine.topk_targets(0, 100, exclude=exclude, exact=True)
    assert ids.shape == sc.shape == (50,)
    assert not np.isin(ids, np.arange(10)).any()
    ids_a, _ = engine.topk_targets(0, 100, exclude=exclude)
    assert len(ids_a) == 50
    # Everything excluded -> empty result, not an error.
    ids, sc = engine.topk_targets(0, 5, exclude=range(60))
    assert ids.shape == sc.shape == (0,)
    # Batched form keeps the (n, k_eff) contract.
    ids, sc = engine.topk_targets_batch([0, 1, 2], 100, exclude=exclude)
    assert ids.shape == sc.shape == (3, 50)


# ---------------------------------------------------------------------------
# Live views: growth, refresh invalidation, dynamic clamp
# ---------------------------------------------------------------------------

def make_live(tmp_path, num_nodes=120, num_edges=600, p=6, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    graph = Graph(num_nodes=num_nodes,
                  src=rng.integers(0, num_nodes, num_edges),
                  dst=rng.integers(0, num_nodes, num_edges))
    scheme = PartitionScheme.uniform(num_nodes, p)
    store = NodeStore(tmp_path / "live-nodes.bin", scheme, dim,
                      learnable=True)
    store.initialize(rng=np.random.default_rng(seed + 1))
    edges = EdgeBucketStore(tmp_path / "live-edges.bin", graph, scheme)
    return LiveGraph(store, edges, seed=seed + 7)


def test_live_growth_reranks_and_reclamps(tmp_path):
    live = make_live(tmp_path, seed=10)
    cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=0)
    model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(3))
    engine = ServingEngine.over_live(live, model, buffer_capacity=3)
    engine.topk_targets(0, 5)                  # build the index pre-growth
    grown = live.add_nodes(9)
    total = live.num_nodes
    # Clamp reads the dynamic scheme: k = total-1 after excluding the src.
    for exact in (True, False):
        ids, sc = engine.topk_targets(0, total, exclude=[0], exact=exact)
        assert len(ids) == total - 1
        assert np.isin(grown, ids).all()       # grown nodes are candidates
    # Parity with an offline engine over the grown table.
    table = live.node_store.read_all()
    offline = make_engine(tmp_path, table, live.num_partitions, 3,
                          num_relations=1, name="off")
    ids_live, sc_live = engine.topk_targets(3, 12)
    ids_off, sc_off = offline.topk_targets(3, 12, exact=True)
    np.testing.assert_array_equal(ids_live, ids_off)
    np.testing.assert_allclose(sc_live, sc_off, atol=1e-5)


def test_live_refresh_invalidates_ann_partitions(tmp_path):
    live = make_live(tmp_path, seed=12)
    cfg = LinkPredictionConfig(embedding_dim=8, encoder="none", seed=0)
    model = LinkPredictionModel(cfg, 1, rng=np.random.default_rng(3))
    engine = ServingEngine.over_live(live, model, buffer_capacity=3)
    engine.topk_targets(0, 5)
    index = engine.ann_index
    assert index is not None and index.stats()["partitions_stale"] == 0
    # A refresh write-back announces touched partitions; their clusters
    # must go stale and rebuild before the next pruned sweep.
    with live.table_write():
        live.node_store.write_span(0, np.full(
            (live.scheme.partition_size(0), 8), 0.5, dtype=np.float32))
    live.notify_table_updated([0])
    assert index.stats()["partitions_stale"] == 1
    ids_a, sc_a = engine.topk_targets(1, 8)
    assert index.stats()["partitions_stale"] == 0
    ids_x, sc_x = engine.topk_targets(1, 8, exact=True)
    np.testing.assert_array_equal(ids_a, ids_x)
    np.testing.assert_array_equal(sc_a, sc_x)


# ---------------------------------------------------------------------------
# Batcher coalescing with the exact flag
# ---------------------------------------------------------------------------

def test_batcher_groups_exact_separately(tmp_path):
    table = make_table(300, 8, "clustered", seed=13)
    engine = make_engine(tmp_path, table, 6, capacity=2)
    with RequestBatcher(engine, max_batch=8, max_wait_ms=20.0) as batcher:
        reqs = [batcher.submit("topk",
                               np.array([s, 0, 5, ex], dtype=np.int64))
                for s, ex in ((2, 0), (30, 1), (60, 0), (90, 1))]
        results = [r.wait() for r in reqs]
    for (ids, sc), (s, ex) in zip(results, ((2, 0), (30, 1), (60, 0),
                                            (90, 1))):
        want_ids, want_sc = engine.topk_targets(s, 5, exact=bool(ex))
        np.testing.assert_array_equal(ids, want_ids)
        np.testing.assert_allclose(sc, want_sc, rtol=1e-5)


def test_batcher_legacy_payload_and_helper(tmp_path):
    table = make_table(200, 8, "uniform", seed=14)
    engine = make_engine(tmp_path, table, 4, capacity=2)
    with RequestBatcher(engine, max_batch=4, max_wait_ms=1.0) as batcher:
        legacy = batcher.submit("topk", np.array([7, 0, 4], dtype=np.int64))
        ids_new, _ = batcher.topk_targets(7, 4, exact=True)
        ids_old, _ = legacy.wait()
    want_ann, _ = engine.topk_targets(7, 4)
    want_exact, _ = engine.topk_targets(7, 4, exact=True)
    np.testing.assert_array_equal(ids_old, want_ann)   # 3-entry -> ann default
    np.testing.assert_array_equal(ids_new, want_exact)


# ---------------------------------------------------------------------------
# AnnIndex internals
# ---------------------------------------------------------------------------

def test_cluster_bounds_are_sound(tmp_path):
    """Every member's true dot-product score is below its cluster bound —
    the invariant every pruning decision rests on."""
    table = make_table(500, 12, "skewed", seed=15)
    scheme = PartitionScheme.uniform(500, 5)
    store = NodeStore(tmp_path / "t.bin", scheme, 12, learnable=False)
    store.initialize(values=table)
    index = AnnIndex(store, cluster_size=32)
    index.ensure_current()
    queries = make_table(8, 12, "uniform", seed=16)
    bounds = index.cluster_bounds(queries)
    for part in range(5):
        pc = index.partition(part)
        lo = int(scheme.boundaries[part])
        for j in range(pc.num_clusters):
            rows = pc.rows[pc.indptr[j]:pc.indptr[j + 1]]
            scores = queries.astype(np.float64) @ table[lo + rows].T.astype(
                np.float64)
            assert (scores.max(axis=1) <= bounds[part][:, j]).all()


def test_kmeans_cluster_shapes(tmp_path):
    table = make_table(130, 8, "clustered", seed=17)
    scheme = PartitionScheme.uniform(130, 2)
    store = NodeStore(tmp_path / "t.bin", scheme, 8, learnable=False)
    store.initialize(values=table)
    index = AnnIndex(store, cluster_size=16)
    index.ensure_current()
    for part in range(2):
        pc = index.partition(part)
        size = scheme.partition_size(part)
        assert pc.num_rows == size
        # Every local row appears exactly once across clusters.
        np.testing.assert_array_equal(np.sort(pc.rows), np.arange(size))
        assert pc.indptr[-1] == size
        assert (pc.radii >= 0).all()
        assert pc.centroids.shape == (pc.num_clusters, 8)
    with pytest.raises(ValueError, match="cluster_size"):
        AnnIndex(store, cluster_size=0)
