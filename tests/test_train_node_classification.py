"""Node classification trainer tests: in-memory and cached-disk modes."""

import numpy as np
import pytest

from repro.graph import load_papers100m_mini
from repro.train import (DiskNodeClassificationConfig,
                         DiskNodeClassificationTrainer,
                         NodeClassificationConfig, NodeClassificationTrainer,
                         relabel_for_training_cache)


@pytest.fixture(scope="module")
def nc_data():
    return load_papers100m_mini(num_nodes=2500, num_edges=20000, feat_dim=24,
                                num_classes=6, seed=0)


def fast_config(**overrides):
    defaults = dict(hidden_dim=24, num_layers=2, fanouts=(8, 4), batch_size=128,
                    num_epochs=6, lr=0.01, seed=0)
    defaults.update(overrides)
    return NodeClassificationConfig(**defaults)


class TestConfig:
    def test_fanout_mismatch(self):
        with pytest.raises(ValueError):
            NodeClassificationConfig(num_layers=3, fanouts=(5, 5))


class TestInMemory:
    def test_beats_chance(self, nc_data):
        trainer = NodeClassificationTrainer(nc_data, fast_config())
        result = trainer.train()
        chance = 1.0 / nc_data.num_classes
        assert result.final_accuracy > 2 * chance
        assert result.epochs[-1].loss < result.epochs[0].loss

    def test_requires_features(self, nc_data):
        from repro.graph import Graph
        bare = Graph(num_nodes=10, src=np.array([0]), dst=np.array([1]))
        from repro.graph.datasets import NodeClassificationDataset
        ds = NodeClassificationDataset(graph=bare, train_nodes=np.array([0]),
                                       valid_nodes=np.array([1]),
                                       test_nodes=np.array([2]),
                                       stats=nc_data.stats)
        with pytest.raises(ValueError):
            NodeClassificationTrainer(ds, fast_config())

    def test_eval_every_records_metric(self, nc_data):
        trainer = NodeClassificationTrainer(nc_data,
                                            fast_config(num_epochs=2, eval_every=1))
        result = trainer.train()
        assert all(0.0 <= e.metric <= 1.0 for e in result.epochs)


class TestRelabeling:
    def test_training_nodes_front_loaded(self, nc_data):
        relabeled, old_to_new, train_parts = relabel_for_training_cache(nc_data, 8)
        n_train = len(nc_data.train_nodes)
        # After relabeling, training nodes are exactly ids [0, n_train).
        np.testing.assert_array_equal(np.sort(relabeled.train_nodes),
                                      np.arange(n_train))
        assert train_parts == [0]  # 1% of nodes fit in the first partition

    def test_relabeling_preserves_structure(self, nc_data):
        relabeled, old_to_new, _ = relabel_for_training_cache(nc_data, 8)
        g0, g1 = nc_data.graph, relabeled.graph
        assert g1.num_edges == g0.num_edges
        # Edge (u, v) maps to (old_to_new[u], old_to_new[v]) with features
        # and labels carried along.
        np.testing.assert_array_equal(g1.src, old_to_new[g0.src])
        some = nc_data.train_nodes[:10]
        np.testing.assert_allclose(g1.node_features[old_to_new[some]],
                                   g0.node_features[some])
        np.testing.assert_array_equal(g1.node_labels[old_to_new[some]],
                                      g0.node_labels[some])


class TestDisk:
    def test_disk_training_beats_chance(self, nc_data, tmp_path):
        disk = DiskNodeClassificationConfig(workdir=tmp_path, num_partitions=8,
                                            buffer_capacity=4)
        trainer = DiskNodeClassificationTrainer(nc_data, fast_config(), disk)
        result = trainer.train()
        chance = 1.0 / nc_data.num_classes
        assert result.final_accuracy > 2 * chance

    def test_zero_intra_epoch_swaps(self, nc_data, tmp_path):
        """Section 5.2: IO happens once per epoch (initial fill), never mid-epoch."""
        disk = DiskNodeClassificationConfig(workdir=tmp_path, num_partitions=8,
                                            buffer_capacity=4)
        trainer = DiskNodeClassificationTrainer(nc_data,
                                                fast_config(num_epochs=2), disk)
        result = trainer.train()
        for epoch in result.epochs:
            assert epoch.partition_loads <= disk.buffer_capacity

    def test_disk_accuracy_close_to_memory(self, nc_data, tmp_path):
        """Table 3: disk NC accuracy within a few points of in-memory."""
        mem = NodeClassificationTrainer(nc_data, fast_config()).train()
        disk_cfg = DiskNodeClassificationConfig(workdir=tmp_path,
                                                num_partitions=8,
                                                buffer_capacity=6)
        disk = DiskNodeClassificationTrainer(nc_data, fast_config(), disk_cfg).train()
        assert disk.final_accuracy > mem.final_accuracy - 0.15
