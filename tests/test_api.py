"""The unified job API: spec round-trips, registry, CLI parity, run().

Three contracts under test (ISSUE 5 acceptance criteria):

* spec round-trip — ``from_dict(to_dict(spec))`` is the identity for
  every job kind, and unknown sections/fields are rejected;
* CLI parity — every legacy subcommand and its spec-file equivalent
  resolve to the *same* ``JobSpec`` (asserted through ``--dump-spec`` on
  both paths), and explicit command-line flags win over ``--config``
  JSON values;
* execution — ``repro.api.run`` / ``repro run spec.json`` can express
  and execute the job kinds end to end, including snapshot + resume.
"""

import json

import numpy as np
import pytest

from repro import api, cli
from repro.api import (CheckpointSpec, DataSpec, JobSpec, ModelSpec,
                       ServeSpec, StorageSpec, StreamSpec, TrainSpec,
                       registry)
from repro.serve import loader as serve_loader

# Non-default values exercising every section a kind reads.
SPEC_SAMPLES = {
    "lp-mem": JobSpec(kind="lp-mem",
                      data=DataSpec(dataset="wikikg90m-mini", scale=0.2),
                      model=ModelSpec(dim=48, encoder="gcn", decoder="transe",
                                      fanouts=(7, 3)),
                      train=TrainSpec(batch_size=128, negatives=32, epochs=2,
                                      seed=9, save="out/ckpt"),
                      checkpoint=CheckpointSpec(every=1, dir="snaps",
                                                compress=True)),
    "lp-disk": JobSpec(kind="lp-disk",
                       model=ModelSpec(encoder="none"),
                       storage=StorageSpec(workdir="w", partitions=8,
                                           logical=4, buffer=2,
                                           policy="beta"),
                       checkpoint=CheckpointSpec(every=3, incremental=True)),
    "lp-pipelined": JobSpec(kind="lp-pipelined",
                            train=TrainSpec(workers=3, pipeline_depth=2,
                                            deterministic=True)),
    "nc-mem": JobSpec(kind="nc-mem",
                      data=DataSpec(nodes=800, edges=4000, classes=5),
                      model=ModelSpec(dim=16, fanouts=(4,)),
                      train=TrainSpec(epochs=1)),
    "nc-disk": JobSpec(kind="nc-disk",
                       data=DataSpec(nodes=600),
                       storage=StorageSpec(partitions=4, buffer=2)),
    "lp-stream": JobSpec(kind="lp-stream",
                         stream=StreamSpec(events=100, compact_every=50),
                         storage=StorageSpec(buffer=2)),
    "serve": JobSpec(kind="serve",
                     serve=ServeSpec(snapshot="snaps", embed="1,2",
                                     score=("1:2", "3:0:4"), topk=(5, 3),
                                     bench=10, mix="random")),
    "stream": JobSpec(kind="stream",
                      data=DataSpec(dataset="freebase86m-mini", scale=0.02),
                      stream=StreamSpec(events=200, delete_fraction=0.3,
                                        refresh=True, verify=True)),
}


# ---------------------------------------------------------------------------
# Spec round-trip + rejection
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", sorted(SPEC_SAMPLES))
def test_spec_roundtrip_identity(kind):
    spec = SPEC_SAMPLES[kind]
    assert JobSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("kind", sorted(SPEC_SAMPLES))
def test_resolved_spec_roundtrip_and_idempotence(kind):
    resolved = SPEC_SAMPLES[kind].resolve()
    again = JobSpec.from_dict(resolved.to_dict())
    assert again == resolved
    assert again.resolve() == resolved    # resolution is idempotent


@pytest.mark.parametrize("kind", sorted(SPEC_SAMPLES))
def test_spec_file_roundtrip(kind, tmp_path):
    spec = SPEC_SAMPLES[kind]
    path = api.save_spec(spec, tmp_path / "job.json")
    assert api.load_spec(path) == spec


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown job kind"):
        JobSpec.from_dict({"kind": "lp-quantum"})


def test_unknown_section_rejected():
    with pytest.raises(ValueError, match="unknown spec section"):
        JobSpec.from_dict({"kind": "lp-mem", "storage": {"buffer": 2}})


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="unknown field"):
        JobSpec.from_dict({"kind": "lp-mem", "train": {"epoches": 3}})


def test_missing_kind_rejected():
    with pytest.raises(ValueError, match="kind"):
        JobSpec.from_dict({"train": {"epochs": 3}})


def test_serve_requires_snapshot():
    with pytest.raises(ValueError, match="serve.snapshot"):
        JobSpec(kind="serve").resolve()


def test_deterministic_only_for_pipelined():
    spec = JobSpec(kind="lp-mem", train=TrainSpec(deterministic=True))
    with pytest.raises(ValueError, match="lp-pipelined"):
        spec.resolve()


def test_incremental_needs_disk_trainer():
    spec = JobSpec(kind="lp-mem", checkpoint=CheckpointSpec(incremental=True))
    with pytest.raises(ValueError, match="disk trainer"):
        spec.resolve()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_lists_all_nine_kinds():
    assert set(api.job_kinds()) == {"lp-mem", "lp-disk", "lp-pipelined",
                                    "nc-mem", "nc-disk", "lp-stream",
                                    "serve", "serve-fleet", "stream"}


def test_registry_owns_trainer_kind_strings():
    from repro.stream import ContinualTrainer
    from repro.train import (DiskLinkPredictionTrainer,
                             DiskNodeClassificationTrainer,
                             LinkPredictionTrainer, NodeClassificationTrainer,
                             PipelinedLinkPredictionTrainer)
    assert LinkPredictionTrainer.KIND == registry.LP_MEM
    assert DiskLinkPredictionTrainer.KIND == registry.LP_DISK
    assert PipelinedLinkPredictionTrainer.KIND == registry.LP_PIPELINED
    assert NodeClassificationTrainer.KIND == registry.NC_MEM
    assert DiskNodeClassificationTrainer.KIND == registry.NC_DISK
    assert ContinualTrainer.KIND == registry.LP_STREAM
    assert serve_loader.LP_KINDS == registry.LP_SNAPSHOT_KINDS
    assert serve_loader.NC_KINDS == registry.NC_SNAPSHOT_KINDS


def test_every_kind_has_a_factory():
    for kind in api.job_kinds():
        assert callable(api.get_factory(kind))


def test_info_jobs_schema_generated_from_registry(capsys):
    assert cli.main(["info", "--jobs"]) == 0
    out = capsys.readouterr().out
    for kind in api.job_kinds():
        assert kind in out
    # one-line-per-field, straight from the dataclasses
    assert "model.fanouts" in out
    assert "checkpoint.incremental" in out


# ---------------------------------------------------------------------------
# CLI parity: legacy flags vs spec file resolve to the same JobSpec
# ---------------------------------------------------------------------------

def _dump(capsys, argv):
    assert cli.main(argv) == 0
    return json.loads(capsys.readouterr().out)


PARITY_CASES = [
    (["train-lp"], {"kind": "lp-mem"}),
    (["train-lp", "--scale", "0.2", "--epochs", "1", "--encoder", "none",
      "--dim", "12", "--seed", "3"],
     {"kind": "lp-mem",
      "data": {"scale": 0.2},
      "model": {"dim": 12, "encoder": "none"},
      "train": {"epochs": 1, "seed": 3}}),
    (["train-lp", "--disk", "--policy", "beta", "--partitions", "8",
      "--logical", "4", "--buffer", "2", "--workdir", "W",
      "--checkpoint-every", "2", "--checkpoint-incremental"],
     {"kind": "lp-disk",
      "storage": {"workdir": "W", "partitions": 8, "logical": 4,
                  "buffer": 2, "policy": "beta"},
      "checkpoint": {"every": 2, "incremental": True}}),
    (["train-lp", "--pipelined", "--workers", "3", "--deterministic",
      "--fanouts", "5", "3"],
     {"kind": "lp-pipelined",
      "model": {"fanouts": [5, 3]},
      "train": {"workers": 3, "deterministic": True}}),
    (["train-lp", "--workdir", "W", "--checkpoint-every", "1"],
     {"kind": "lp-mem", "checkpoint": {"every": 1, "dir": "W/checkpoints"}}),
    (["train-nc", "--nodes", "900", "--dim", "24", "--epochs", "2"],
     {"kind": "nc-mem",
      "data": {"nodes": 900},
      "model": {"dim": 24},
      "train": {"epochs": 2}}),
    (["train-nc", "--disk", "--partitions", "4", "--buffer", "2"],
     {"kind": "nc-disk", "storage": {"partitions": 4, "buffer": 2}}),
    (["serve", "--snapshot", "S", "--embed", "1,2", "--topk", "3", "5",
      "--bench", "100", "--mix", "random", "--nc-nodes", "777"],
     {"kind": "serve",
      "data": {"nodes": 777},
      "serve": {"snapshot": "S", "embed": "1,2", "topk": [3, 5],
                "bench": 100, "mix": "random"}}),
    (["stream", "--events", "500", "--compact-every", "100", "--refresh",
      "--dim", "16", "--buffer", "2", "--verify"],
     {"kind": "stream",
      "model": {"dim": 16},
      "storage": {"buffer": 2},
      "stream": {"events": 500, "compact_every": 100, "refresh": True,
                 "verify": True}}),
]


@pytest.mark.parametrize("argv,spec_payload", PARITY_CASES,
                         ids=[" ".join(c[0][:3]) for c in PARITY_CASES])
def test_cli_flag_and_spec_file_parity(argv, spec_payload, capsys, tmp_path):
    """A legacy subcommand and its hand-written spec file must resolve to
    byte-identical JobSpecs — the proof the shims preserve behaviour."""
    from_flags = _dump(capsys, argv + ["--dump-spec"])
    spec_file = tmp_path / "job.json"
    spec_file.write_text(json.dumps(spec_payload))
    from_spec = _dump(capsys, ["run", str(spec_file), "--dump-spec"])
    assert from_flags == from_spec


# ---------------------------------------------------------------------------
# Config-file precedence (regression: flags must beat --config values)
# ---------------------------------------------------------------------------

def test_explicit_flags_win_over_config_file(capsys, tmp_path):
    config = tmp_path / "run.json"
    config.write_text(json.dumps({"epochs": 7, "dim": 64, "seed": 5}))
    spec = _dump(capsys, ["train-lp", "--config", str(config),
                          "--epochs", "2", "--dump-spec"])
    assert spec["train"]["epochs"] == 2      # explicit flag wins
    assert spec["model"]["dim"] == 64        # config fills the rest
    assert spec["train"]["seed"] == 5


def test_config_file_unknown_key_rejected(tmp_path):
    config = tmp_path / "run.json"
    config.write_text(json.dumps({"epoches": 7}))
    with pytest.raises(SystemExit, match="unknown config key"):
        cli.main(["train-lp", "--config", str(config), "--dump-spec"])


# ---------------------------------------------------------------------------
# Execution: api.run / repro run end to end
# ---------------------------------------------------------------------------

def _tiny_lp_spec(**checkpoint):
    return JobSpec(kind="lp-mem",
                   data=DataSpec(dataset="fb15k237", scale=0.03),
                   model=ModelSpec(dim=8, encoder="none"),
                   train=TrainSpec(batch_size=256, negatives=16, epochs=1,
                                   eval_negatives=32, eval_max_edges=100),
                   checkpoint=CheckpointSpec(**checkpoint))


def test_api_run_returns_train_result():
    events = []
    result = api.run(_tiny_lp_spec(), on_event=lambda e, p: events.append(e))
    assert np.isfinite(result.final_mrr)
    assert len(result.epochs) == 1
    assert "epoch" in events      # listener hook fired


def test_api_run_matches_direct_trainer():
    """The API path is the trainer path — same seed, same final params."""
    from repro.graph import load_fb15k237
    from repro.train import LinkPredictionConfig, LinkPredictionTrainer
    via_api = api.build_job(_tiny_lp_spec())
    api_result = via_api.run()
    direct = LinkPredictionTrainer(
        load_fb15k237(scale=0.03),
        LinkPredictionConfig(embedding_dim=8, encoder="none", batch_size=256,
                             num_negatives=16, num_epochs=1,
                             eval_negatives=32, eval_max_edges=100,
                             eval_every=1, seed=0))
    direct_result = direct.train()
    np.testing.assert_array_equal(via_api.trainer.embeddings.table,
                                  direct.embeddings.table)
    assert api_result.final_mrr == direct_result.final_mrr


def test_repro_run_snapshot_then_resume(tmp_path, capsys):
    """`repro run` trains with a checkpoint cadence, then a second spec
    resumes from the snapshot root and continues."""
    ckpt = tmp_path / "ckpt"
    first = _tiny_lp_spec(every=1, dir=str(ckpt))
    spec_file = api.save_spec(first, tmp_path / "train.json")
    assert cli.main(["run", str(spec_file)]) == 0
    assert capsys.readouterr().out.count("final MRR") == 1
    snaps = list(ckpt.glob("snap-*"))
    assert snaps, "checkpoint cadence wrote no snapshot"

    resume = _tiny_lp_spec(every=0, dir=str(ckpt), resume_from=str(ckpt))
    resume.train.epochs = 2
    spec_file = api.save_spec(resume, tmp_path / "resume.json")
    assert cli.main(["run", str(spec_file)]) == 0
    out = capsys.readouterr().out
    assert "resumed from snapshot at epoch 1" in out
    assert "final MRR" in out


def test_job_snapshot_roundtrips_through_serving(tmp_path):
    """job.snapshot() after run() produces a servable snapshot."""
    job = api.build_job(_tiny_lp_spec(every=0, dir=str(tmp_path / "ck")))
    job.run()
    snap = job.snapshot()
    serve_spec = JobSpec(kind="serve",
                         serve=ServeSpec(snapshot=str(snap), embed="0,1"),
                         storage=StorageSpec(workdir=str(tmp_path / "sv")))
    results = api.run(serve_spec)
    ids, rows = results["embed"]
    assert ids.tolist() == [0, 1]
    np.testing.assert_array_equal(rows[0], job.trainer.embeddings.table[0])


def test_lp_stream_kind_runs_continual_refresh(tmp_path):
    """The lp-stream kind ingests, compacts, and refresh-trains by default
    (stream.refresh resolves on)."""
    spec = JobSpec(kind="lp-stream",
                   data=DataSpec(dataset="freebase86m-mini", scale=0.02),
                   model=ModelSpec(dim=8),
                   train=TrainSpec(batch_size=128, negatives=8),
                   storage=StorageSpec(workdir=str(tmp_path / "stream"),
                                       partitions=4, buffer=2),
                   stream=StreamSpec(events=400, event_batch=100,
                                     compact_every=150, add_nodes_every=0,
                                     verify=True))
    assert spec.resolve().stream.refresh is True
    stats = api.run(spec)
    assert stats["compactions"] >= 1
    assert stats["refreshes"] >= 1
    assert stats["events_appended"] > 0


def test_run_unknown_dataset_is_clean_error(tmp_path):
    spec_file = tmp_path / "bad.json"
    spec_file.write_text(json.dumps(
        {"kind": "lp-mem", "data": {"dataset": "nope"}}))
    with pytest.raises(SystemExit, match="unknown LP dataset"):
        cli.main(["run", str(spec_file)])


def test_bare_workdir_does_not_enable_checkpointing(capsys):
    """Legacy parity: --workdir alone never turns on the snapshot
    subsystem for the in-memory kinds; only a cadence (or explicit dir)
    does — and then the workdir supplies the default root."""
    spec = _dump(capsys, ["train-lp", "--workdir", "W", "--dump-spec"])
    assert spec["checkpoint"]["dir"] is None
    assert spec["checkpoint"]["every"] == 0


def test_lp_dataset_seed_reaches_the_loader():
    """DataSpec.seed is honored for LP kinds, not silently dropped."""
    from repro.api.jobs import _lp_dataset
    spec0 = _tiny_lp_spec().resolve()
    spec7 = _tiny_lp_spec().resolve()
    spec7.data.seed = 7
    a, b = _lp_dataset(spec0), _lp_dataset(spec7)
    assert not np.array_equal(a.split.train, b.split.train)
    assert np.array_equal(_lp_dataset(spec0).split.train, a.split.train)


def test_serve_results_keep_duplicate_queries(tmp_path):
    """Structured serve results are parallel arrays — duplicate ids are
    not collapsed the way a dict keyed by id would."""
    job = api.build_job(_tiny_lp_spec(every=0, dir=str(tmp_path / "ck")))
    job.run()
    snap = job.snapshot()
    results = api.run(JobSpec(
        kind="serve",
        serve=ServeSpec(snapshot=str(snap), embed="5,5,7",
                        score=("1:2", "1:2")),
        storage=StorageSpec(workdir=str(tmp_path / "sv"))))
    ids, rows = results["embed"]
    assert ids.tolist() == [5, 5, 7] and len(rows) == 3
    assert len(results["score"]) == 2
    assert results["score"][0] == results["score"][1]


def test_nc_dataset_name_is_validated():
    spec = JobSpec(kind="nc-mem", data=DataSpec(dataset="fb15k237"))
    with pytest.raises(ValueError, match="unknown NC dataset"):
        api.build_job(spec)


def test_to_dict_rejects_populated_unread_section():
    """Symmetric with from_dict: data in a section the kind doesn't read
    is rejected, never silently dropped by serialization."""
    spec = JobSpec(kind="serve", serve=ServeSpec(snapshot="s"),
                   train=TrainSpec(seed=7))
    with pytest.raises(ValueError, match="does not read"):
        spec.to_dict()


def test_internal_errors_keep_their_traceback(monkeypatch, tmp_path):
    """Only JobError becomes a clean SystemExit; a ValueError from deep
    inside a run is a real defect and must propagate."""
    from repro.api import jobs

    def boom(self, verbose=False):
        raise ValueError("internal defect")
    monkeypatch.setattr(jobs.LinkPredictionJob, "run", boom)
    spec_file = api.save_spec(_tiny_lp_spec(), tmp_path / "job.json")
    with pytest.raises(ValueError, match="internal defect"):
        cli.main(["run", str(spec_file)])
