"""Stateful property-based tests (hypothesis rule-based state machines).

The partition buffer is the piece of the system where a subtle bug silently
corrupts training (a stale row, a lost write-back), so it gets a full model-
based test: a reference in-memory table is updated in lockstep with the real
memmap-backed buffer through random admit/evict/swap/update/flush sequences,
and every gather must agree with the reference.

The machine also interleaves **checkpoint/resume**: a checkpoint rule
snapshots the flushed store through the real :class:`SnapshotManager` (and
stashes the reference state alongside), and a resume rule scribbles NaNs
into a random partition (simulated crash damage), restores the snapshot,
and rolls the reference model back — after which every buffer-residency
invariant must still hold and training-style updates must keep agreeing.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize, invariant,
                                 precondition, rule)

from repro.graph import PartitionScheme
from repro.nn import RowAdagrad
from repro.storage import NodeStore, PartitionBuffer
from repro.train import SnapshotManager

NUM_NODES = 48
NUM_PARTS = 6
CAPACITY = 3
DIM = 4


class BufferMachine(RuleBasedStateMachine):
    """Reference-model test of PartitionBuffer (+ checkpoint/resume)."""

    def __init__(self):
        super().__init__()
        import tempfile
        self._tmp = tempfile.TemporaryDirectory()
        scheme = PartitionScheme.uniform(NUM_NODES, NUM_PARTS)
        self.store = NodeStore(f"{self._tmp.name}/t.bin", scheme, DIM,
                               learnable=True)
        rng = np.random.default_rng(0)
        init = rng.normal(0, 1, (NUM_NODES, DIM)).astype(np.float32)
        self.store.initialize(values=init)
        self.buffer = PartitionBuffer(self.store, CAPACITY,
                                      optimizer=RowAdagrad(lr=0.1))
        # Reference model: full table + optimizer state, updated in lockstep.
        self.ref_table = init.copy()
        self.ref_state = np.zeros_like(init)
        self.ref_opt = RowAdagrad(lr=0.1)
        # Checkpoint/resume machinery (same subsystem the trainers use).
        self.snapshots = SnapshotManager(f"{self._tmp.name}/ckpt", keep=1)
        self._snap_id = 0
        self._snap_ref = None   # (ref_table, ref_state, resident) at snapshot

    def teardown(self):
        self._tmp.cleanup()

    # ------------------------------------------------------------------
    @rule(part=st.integers(0, NUM_PARTS - 1))
    def admit(self, part):
        if self.buffer.is_resident(part) or len(self.buffer.resident) >= CAPACITY:
            return
        self.buffer.admit(part)

    @rule(part=st.integers(0, NUM_PARTS - 1))
    def evict(self, part):
        if not self.buffer.is_resident(part):
            return
        self.buffer.evict(part)

    @rule(parts=st.sets(st.integers(0, NUM_PARTS - 1), min_size=1,
                        max_size=CAPACITY))
    def swap(self, parts):
        self.buffer.set_partitions(sorted(parts))

    @rule(node=st.integers(0, NUM_NODES - 1),
          seed=st.integers(0, 1000))
    def update_row(self, node, seed):
        part = int(node // (NUM_NODES // NUM_PARTS))
        if not self.buffer.is_resident(part):
            return
        grad = np.random.default_rng(seed).normal(
            0, 1, (1, DIM)).astype(np.float32)
        self.buffer.apply_gradients(np.array([node]), grad)
        self.ref_opt.update(self.ref_table, self.ref_state,
                            np.array([node]), grad)

    @rule()
    def flush(self):
        self.buffer.flush()

    @rule()
    def checkpoint(self):
        """Flush + atomic snapshot, exactly like the trainers do."""
        self.buffer.flush()
        self.store.flush()
        self._snap_id += 1
        self.snapshots.save(self._snap_id,
                            {"resident": self.buffer.resident},
                            {"table": self.store.read_all(),
                             "state": self.store.read_all_state()})
        self._snap_ref = (self.ref_table.copy(), self.ref_state.copy(),
                          list(self.buffer.resident))

    @precondition(lambda self: self._snap_ref is not None)
    @rule(damage=st.integers(0, NUM_PARTS - 1))
    def crash_and_resume(self, damage):
        """Scribble NaNs into one partition (crash damage after the
        snapshot), then recover: drop the buffer without write-back,
        restore the store from the snapshot, re-admit the recorded
        residency, and roll the reference model back in lockstep."""
        junk = np.full((NUM_NODES // NUM_PARTS, DIM), np.nan, dtype=np.float32)
        self.store.write_partition(damage, junk)
        meta, arrays = self.snapshots.load()
        self.buffer.drop_all()
        self.store.restore(arrays["table"], arrays["state"])
        self.buffer.set_partitions(meta["resident"])
        self.ref_table, self.ref_state, _ = self._snap_ref
        self.ref_table = self.ref_table.copy()
        self.ref_state = self.ref_state.copy()

    # ------------------------------------------------------------------
    @invariant()
    def resident_rows_match_reference(self):
        nodes = self.buffer.resident_nodes()
        if len(nodes) == 0:
            return
        got = self.buffer.gather(nodes)
        np.testing.assert_allclose(got, self.ref_table[nodes], rtol=1e-5,
                                   atol=1e-6)

    @invariant()
    def capacity_respected(self):
        assert len(self.buffer.resident) <= CAPACITY

    @invariant()
    def residency_bookkeeping_consistent(self):
        """The slab row map, partition-of-row map, dirty set, and free-slot
        list must all agree with the resident set — the buffer-residency
        invariant checkpoint/resume is not allowed to violate."""
        resident = self.buffer.resident
        assert sorted(self.buffer._slot_of) == resident
        assert sorted(self.buffer._dirty) == resident
        assert set(self.buffer.dirty_partitions()) <= set(resident)
        assert len(self.buffer._free_slots) == CAPACITY - len(resident)
        mask = self.buffer.node_mask()
        for part in range(NUM_PARTS):
            lo = int(self.store.scheme.boundaries[part])
            hi = int(self.store.scheme.boundaries[part + 1])
            assert mask[lo:hi].all() == (part in resident)
            assert mask[lo:hi].any() == (part in resident)

    @invariant()
    def evicted_rows_are_durable(self):
        """Every non-resident partition's disk contents equal the reference
        (write-back happened for everything dirty that left the buffer)."""
        mask = self.buffer.node_mask()
        missing = np.flatnonzero(~mask)
        if len(missing) == 0:
            return
        on_disk = self.store.read_rows(missing)
        np.testing.assert_allclose(on_disk, self.ref_table[missing], rtol=1e-5,
                                   atol=1e-6)


TestBufferStateMachine = BufferMachine.TestCase
TestBufferStateMachine.settings = settings(max_examples=20,
                                           stateful_step_count=30,
                                           deadline=None)


# ---------------------------------------------------------------------------
# Autograd fuzzing: random op chains vs numerical gradients
# ---------------------------------------------------------------------------

from hypothesis import given  # noqa: E402

from repro.nn import Tensor, no_grad  # noqa: E402
from tests.conftest import numeric_gradient  # noqa: E402

_UNARY = ["relu", "sigmoid", "tanh", "leaky_relu"]


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.sampled_from(_UNARY), min_size=1, max_size=4),
       rows=st.integers(1, 5), cols=st.integers(1, 4),
       seed=st.integers(0, 1000))
def test_fuzz_unary_chains(ops, rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, (rows, cols)).astype(np.float32)
    # Keep inputs away from the relu/leaky_relu kink at 0: the central
    # difference is wrong within eps of a kink — a limitation of the
    # numeric check, not of the gradients under test.
    x += np.where(x >= 0, 0.25, -0.25).astype(np.float32)

    def apply(t):
        for op in ops:
            t = getattr(t, op)()
        return t.sum()

    t = Tensor(x.copy(), requires_grad=True)
    apply(t).backward()

    def f(a):
        with no_grad():
            return float(apply(Tensor(a)).data)

    numeric = numeric_gradient(f, x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=5e-2, rtol=5e-2)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 12), segs=st.integers(1, 5), dim=st.integers(1, 3),
       seed=st.integers(0, 500))
def test_fuzz_segment_pipeline_gradients(n, segs, dim, seed):
    """Random gather -> segment_mean -> matmul pipelines (the exact op
    composition of a GraphSage layer) have correct gradients."""
    from repro.nn import functional as F
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, (n, dim)).astype(np.float32)
    w = rng.normal(0, 1, (dim, 2)).astype(np.float32)
    index = rng.integers(0, n, size=max(1, n))
    cuts = np.sort(rng.integers(0, len(index) + 1, size=max(0, segs - 1)))
    offsets = np.concatenate([[0], cuts]).astype(np.int64)

    def apply(t):
        gathered = t.index_select(index)
        pooled = F.segment_mean(gathered, offsets)
        return pooled.matmul(Tensor(w)).sum()

    t = Tensor(x.copy(), requires_grad=True)
    apply(t).backward()

    def f(a):
        with no_grad():
            return float(apply(Tensor(a)).data)

    numeric = numeric_gradient(f, x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=5e-2, rtol=5e-2)
