"""Coverage for sim internals and error paths not hit by the table tests."""

import numpy as np
import pytest

from repro.graph import paper_stats
from repro.sim.tables import (_comet_loads, _dense_workload, _half_batch,
                              _layerwise_workload)
from repro.sim.workload import (BatchWorkload, analytic_dense_workload,
                                analytic_hop_draws)


class TestCometLoads:
    def test_initial_fill_counted(self):
        # l=4 units, capacity 2, group=2 physical each: pairs=6, initial
        # covers 1 pair -> 5 swaps; loads = (2 + 5) * 2 = 14.
        assert _comet_loads(num_logical=4, logical_capacity=2, num_physical=8) == 14

    def test_full_buffer_no_swaps(self):
        # capacity == units: all pairs covered by the initial fill.
        assert _comet_loads(num_logical=4, logical_capacity=4, num_physical=8) == 8

    def test_scales_with_group_size(self):
        a = _comet_loads(4, 2, 8)
        b = _comet_loads(4, 2, 16)
        assert b == 2 * a


class TestHalfBatch:
    def test_halves_counts_and_batch(self):
        wl = BatchWorkload(1000.0, 2000.0, 500.0, 64)
        half = _half_batch(wl)
        assert half.nodes_per_batch == 500.0
        assert half.edges_per_batch == 1000.0
        assert half.batch_size == 32


class TestWorkloadCaching:
    def test_dense_workload_cached(self):
        a = _dense_workload("papers100m", (10,), 1000)
        b = _dense_workload("papers100m", (10,), 1000)
        assert a is b  # same object from the cache

    def test_layerwise_exceeds_dense_at_scale(self):
        d = _dense_workload("papers100m", (10, 10), 1000)
        l = _layerwise_workload("papers100m", (10, 10), 1000)
        assert l.edges_per_batch > d.edges_per_batch


class TestHopDraws:
    def test_transit_mode_is_pure_geometric(self):
        transit = analytic_hop_draws(10_000_000, 4, 10.0, 100, dense=False,
                                     dedup=False)
        assert transit[-1] == pytest.approx(100 * 10.0**4)

    def test_transit_exceeds_dedup_once_graph_saturates(self):
        """On a small graph dedup caps the frontier at |V| while the transit
        tree keeps multiplying — the NextDoor-OOM regime."""
        n = 100_000
        dedup = analytic_hop_draws(n, 6, 10.0, 100, dense=False)
        transit = analytic_hop_draws(n, 6, 10.0, 100, dense=False, dedup=False)
        assert transit[-1] > dedup[-1]

    def test_dense_mode_saturates(self):
        draws = analytic_hop_draws(1_000, 6, 10.0, 100, dense=True)
        # Once the graph is exhausted, new frontiers (and draws) collapse.
        assert draws[-1] < draws[2]

    def test_layer_outputs_shrink_forward(self):
        wl = analytic_dense_workload(1_000_000, [10, 10, 10], [9.0] * 3, 500)
        assert wl.layer_outputs[0] > wl.layer_outputs[1] > wl.layer_outputs[2]
        assert wl.layer_outputs[-1] == 500
        assert wl.layer_edges[0] == pytest.approx(wl.edges_per_batch)


class TestStatsRegistry:
    def test_train_fraction_used_for_nc(self):
        stats = paper_stats("papers100m")
        assert 0 < stats.train_fraction < 0.05

    def test_relations_counted(self):
        assert paper_stats("freebase86m").num_relations > 1000
