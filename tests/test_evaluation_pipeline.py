"""Metric and pipeline-model tests."""

import numpy as np
import pytest

from repro.train import (StageTimes, multiclass_accuracy, overlap_efficiency,
                         pipelined_disk_epoch_seconds, pipelined_epoch_seconds,
                         ranking_metrics, ranks_from_scores)


class TestRanks:
    def test_rank_positions(self):
        pos = np.array([3.0, 0.0])
        neg = np.array([[1.0, 2.0, 4.0], [1.0, 2.0, 3.0]])
        ranks = ranks_from_scores(pos, neg)
        np.testing.assert_allclose(ranks, [2.0, 4.0])

    def test_ties_averaged(self):
        pos = np.array([1.0])
        neg = np.array([[1.0, 1.0, 0.0]])
        # 0 better, 2 ties -> 1 + 0 + 1 = 2
        np.testing.assert_allclose(ranks_from_scores(pos, neg), [2.0])

    def test_constant_scores_give_chance_mrr(self):
        """The tie convention must not reward a constant scorer."""
        n_cands = 9
        pos = np.zeros(100)
        neg = np.zeros((100, n_cands))
        metrics = ranking_metrics(ranks_from_scores(pos, neg))
        chance = 1.0 / (1 + n_cands / 2)
        assert metrics.mrr < 2 * chance

    def test_metrics_fields(self):
        m = ranking_metrics(np.array([1.0, 2.0, 20.0]))
        assert m.hits_at_1 == pytest.approx(1 / 3)
        assert m.hits_at_10 == pytest.approx(2 / 3)
        assert m.mrr == pytest.approx((1.0 + 0.5 + 0.05) / 3)
        assert m.num_examples == 3
        assert set(m.as_dict()) == {"mrr", "hits@1", "hits@10", "n"}

    def test_empty(self):
        m = ranking_metrics(np.empty(0))
        assert m.mrr == 0.0 and m.num_examples == 0


class TestAccuracy:
    def test_accuracy(self):
        assert multiclass_accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            multiclass_accuracy(np.array([1]), np.array([1, 2]))

    def test_empty(self):
        assert multiclass_accuracy(np.empty(0), np.empty(0)) == 0.0


class TestPipelineModel:
    def test_bottleneck_dominates(self):
        stages = StageTimes(sample=10.0, transfer=2.0, compute=3.0, update=1.0)
        piped = pipelined_epoch_seconds(stages, num_batches=100)
        assert 10.0 <= piped < stages.serial
        assert piped == pytest.approx(10.0 + 6.0 / 100)

    def test_zero_batches(self):
        assert pipelined_epoch_seconds(StageTimes(), 0) == 0.0

    def test_disk_prefetch_hides_io(self):
        """Balanced IO fully hides behind compute (COMET's regime)."""
        io = [2.0, 1.0, 1.0, 1.0]
        train = [3.0, 3.0, 3.0, 3.0]
        piped = pipelined_disk_epoch_seconds(io, train, prefetch=True)
        assert piped == pytest.approx(2.0 + 12.0)  # first load + all train
        assert overlap_efficiency(io, train) == pytest.approx(3.0 / 5.0)

    def test_unbalanced_schedule_exposes_io(self):
        """BETA's regime: early steps hold most work, late steps starve and
        IO surfaces (Section 7.5)."""
        io = [2.0, 2.0, 2.0, 2.0]
        balanced = pipelined_disk_epoch_seconds(io, [3.0, 3.0, 3.0, 3.0])
        frontloaded = pipelined_disk_epoch_seconds(io, [10.0, 1.0, 0.5, 0.5])
        assert frontloaded > balanced

    def test_no_prefetch_is_serial(self):
        io = [1.0, 1.0]
        train = [2.0, 2.0]
        assert pipelined_disk_epoch_seconds(io, train, prefetch=False) == 6.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pipelined_disk_epoch_seconds([1.0], [1.0, 2.0])

    def test_empty(self):
        assert pipelined_disk_epoch_seconds([], []) == 0.0
        assert overlap_efficiency([], []) == 1.0
