"""Module system tests: parameter registration, state dicts, train/eval."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Tensor


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)
        self.blocks = ModuleList([Linear(2, 2), Linear(2, 2)])

    def forward(self, x):
        h = self.fc1(x).relu()
        h = self.fc2(h)
        for block in self.blocks:
            h = block(h)
        return h


def test_named_parameters_cover_nested_modules():
    net = Net()
    names = {name for name, _ in net.named_parameters()}
    assert "fc1.weight" in names and "fc2.bias" in names
    assert "blocks.0.weight" in names and "blocks.1.bias" in names
    assert len(names) == 8


def test_num_parameters():
    net = Net()
    expected = (4 * 8 + 8) + (8 * 2 + 2) + 2 * (2 * 2 + 2)
    assert net.num_parameters() == expected


def test_zero_grad_clears_all():
    net = Net()
    x = Tensor(np.ones((3, 4), dtype=np.float32))
    net(x).sum().backward()
    assert any(p.grad is not None for p in net.parameters())
    net.zero_grad()
    assert all(p.grad is None for p in net.parameters())


def test_train_eval_propagates():
    net = Net()
    net.eval()
    assert not net.training
    assert not net.fc1.training and not net.blocks[0].training
    net.train()
    assert net.blocks[1].training


def test_state_dict_roundtrip():
    net1, net2 = Net(), Net()
    state = net1.state_dict()
    net2.load_state_dict(state)
    x = Tensor(np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32))
    np.testing.assert_allclose(net1(x).data, net2(x).data, rtol=1e-6)


def test_load_state_dict_validates_shapes():
    net = Net()
    state = net.state_dict()
    state["fc1.weight"] = np.zeros((2, 2), dtype=np.float32)
    with pytest.raises(ValueError):
        net.load_state_dict(state)


def test_load_state_dict_missing_key():
    net = Net()
    state = net.state_dict()
    del state["fc1.weight"]
    with pytest.raises(KeyError):
        net.load_state_dict(state)


def test_forward_is_abstract():
    with pytest.raises(NotImplementedError):
        Module().forward()
