"""Ablation: negative sampling strategy (uniform vs degree-weighted).

The paper (like Marius/DGL-KE) scores positives against a shared pool of
uniformly drawn negatives; DGL-KE's alternative draws negatives
proportionally to degree^0.75, producing harder negatives on heavy-tailed
graphs. This bench trains the same model under both and compares MRR and the
negative pool's difficulty (mean rank of positives against the pool during
training).
"""

import numpy as np
import pytest

from repro.graph import load_fb15k237
from repro.train import (DegreeWeightedNegativeSampler, LinkPredictionConfig,
                         LinkPredictionTrainer)


def test_negative_sampling_strategies(report, benchmark):
    data = load_fb15k237(scale=0.15, seed=0)
    graph = data.graph
    cfg = LinkPredictionConfig(embedding_dim=32, num_layers=1, fanouts=(10,),
                               batch_size=512, num_negatives=64, num_epochs=4,
                               eval_negatives=150, eval_max_edges=800, seed=0)

    # Uniform (the paper's setting).
    uniform = LinkPredictionTrainer(data, cfg).train()

    # Degree-weighted: swap the sampler inside the trainer.
    def train_degree_weighted():
        trainer = LinkPredictionTrainer(data, cfg)
        degrees = graph.degree_in() + graph.degree_out()
        trainer.negatives = DegreeWeightedNegativeSampler(
            degrees, cfg.num_negatives, rng=np.random.default_rng(cfg.seed))
        # The trainer only calls .sample(); the degree sampler is a drop-in.
        trainer.negatives.set_allowed = lambda allowed: None
        return trainer.train()

    weighted = benchmark.pedantic(train_degree_weighted, rounds=1, iterations=1)

    report.header("Ablation: uniform vs degree-weighted negatives (LP)")
    report.row("strategy", "final MRR", "final loss", widths=[16, 10, 11])
    report.row("uniform", f"{uniform.final_mrr:.4f}",
               f"{uniform.epochs[-1].loss:.3f}", widths=[16, 10, 11])
    report.row("degree^0.75", f"{weighted.final_mrr:.4f}",
               f"{weighted.epochs[-1].loss:.3f}", widths=[16, 10, 11])
    report.line("degree-weighted pools are dominated by hub nodes: training "
                "loss sits higher (harder negatives), and at equal epoch "
                "budget the uniform-candidate eval MRR favors uniform "
                "training negatives — evidence for the paper's (and "
                "Marius's) choice of uniform corruption as the default")

    # Harder negatives -> higher training loss at equal epochs.
    assert weighted.epochs[-1].loss > uniform.epochs[-1].loss * 0.9
    # Both produce learning models; uniform matches the eval protocol better.
    assert uniform.final_mrr > 0.15 and weighted.final_mrr > 0.05
    assert uniform.final_mrr >= weighted.final_mrr
