"""Table 6 — effect of DENSE: sampling time, compute time, batch sizes.

Runs this repository's *real* samplers (DENSE vs DGL/PyG-style layerwise)
on a Papers100M scale model for GraphSage depths 1-5, measuring per-batch
CPU sampling time, forward+backward compute time, and the number of unique
nodes / sampled edges per mini batch.

Paper reference (Papers100M, batch 1000, 10 in + 10 out per layer):
  sampling ms  : M-GNN 1.4/18/103/401/1.8k   DGL 5.7/28/376/5.4k/49k
  nodes/edges  : M-GNN 12k/13k ... 23M/91M    DGL 13k/20k ... 33M/222M
The *shape* to reproduce: the layerwise sampler's work compounds with depth
while DENSE's stays near-linear, and DENSE mini batches are ~2x smaller by
three layers.
"""

import time

import numpy as np
import pytest

from repro.baselines import LayerwiseSampler
from repro.core import DenseSampler, GNNEncoder
from repro.graph import load_papers100m_mini
from repro.nn import Tensor

BATCH = 512
DEPTHS = [1, 2, 3, 4]
PAPER = {
    "dense_ms": {1: 1.4, 2: 18, 3: 103, 4: 401, 5: 1800},
    "dgl_ms": {1: 5.7, 2: 28, 3: 376, 4: 5400, 5: 49000},
    "dense_nodes": {1: 12e3, 2: 136e3, 3: 1e6, 4: 6e6},
    "dgl_nodes": {1: 13e3, 2: 182e3, 3: 2e6, 4: 9e6},
}


@pytest.fixture(scope="module")
def graph():
    return load_papers100m_mini(num_nodes=60_000, num_edges=700_000,
                                feat_dim=32, seed=0).graph


def _measure(sampler_factory, graph, depth, rounds=3):
    rng = np.random.default_rng(0)
    sampler = sampler_factory([10] * depth)
    times, nodes, edges = [], [], []
    for r in range(rounds):
        targets = rng.choice(graph.num_nodes, BATCH, replace=False)
        t0 = time.perf_counter()
        batch = sampler.sample(targets)
        times.append(time.perf_counter() - t0)
        nodes.append(batch.stats.num_unique_nodes)
        edges.append(batch.stats.num_sampled_edges)
    return float(np.mean(times) * 1e3), float(np.mean(nodes)), float(np.mean(edges))


def test_table6_sampling_and_batch_sizes(graph, report, benchmark):
    rows = {}
    for depth in DEPTHS:
        d_ms, d_nodes, d_edges = _measure(
            lambda f: DenseSampler(graph, f, rng=np.random.default_rng(1)),
            graph, depth)
        l_ms, l_nodes, l_edges = _measure(
            lambda f: LayerwiseSampler(graph, f, rng=np.random.default_rng(1)),
            graph, depth)
        rows[depth] = (d_ms, l_ms, d_nodes, l_nodes, d_edges, l_edges)

    report.header("Table 6: CPU sampling time per batch (ms) and batch sizes")
    report.row("layers", "dense ms", "lw ms", "lw/dense",
               "dense nodes", "lw nodes", "dense edges", "lw edges",
               widths=[7, 10, 10, 9, 12, 12, 12, 12])
    for depth, (d_ms, l_ms, dn, ln, de, le) in rows.items():
        report.row(depth, f"{d_ms:.1f}", f"{l_ms:.1f}", f"{l_ms / d_ms:.1f}x",
                   f"{dn:,.0f}", f"{ln:,.0f}", f"{de:,.0f}", f"{le:,.0f}",
                   widths=[7, 10, 10, 9, 12, 12, 12, 12])
    report.line()
    report.line("Paper shape checks:")
    ratio3 = rows[3][1] / rows[3][0]
    ratio1 = rows[1][1] / rows[1][0]
    report.line(f"  layerwise/dense time ratio grows with depth: "
                f"{ratio1:.1f}x at 1 layer -> {ratio3:.1f}x at 3 layers "
                f"(paper: 4.1x -> 3.7x, 13x at 4)")
    report.line(f"  dense batch has fewer nodes at 3 layers: "
                f"{rows[3][2]:,.0f} vs {rows[3][3]:,.0f} "
                f"(paper: 1M vs 2M)")

    # Shape assertions (who wins, growing gap, smaller batches).
    assert rows[3][0] < rows[3][1], "DENSE must sample faster at 3 layers"
    assert rows[4][1] / rows[4][0] > rows[1][1] / rows[1][0] * 0.8
    for depth in DEPTHS[1:]:
        assert rows[depth][2] < rows[depth][3]  # fewer nodes
        assert rows[depth][4] < rows[depth][5]  # fewer edges

    # pytest-benchmark anchor: 3-layer DENSE sampling.
    sampler = DenseSampler(graph, [10, 10, 10], rng=np.random.default_rng(2))
    targets = np.random.default_rng(3).choice(graph.num_nodes, BATCH, replace=False)
    benchmark(lambda: sampler.sample(targets))


def test_table6_forward_backward_compute(graph, report, benchmark):
    """GPU-column analogue: forward+backward time over DENSE vs MFG blocks
    using the same layer modules (our dense segment kernels vs per-layer
    block evaluation)."""
    from repro.baselines import LayerwiseEncoder
    dim = 32
    rows = {}
    for depth in [1, 2, 3]:
        rng = np.random.default_rng(0)
        dense_sampler = DenseSampler(graph, [10] * depth, rng=rng)
        layer_sampler = LayerwiseSampler(graph, [10] * depth,
                                         rng=np.random.default_rng(0))
        enc = GNNEncoder("graphsage", [dim] * (depth + 1),
                         rng=np.random.default_rng(1))
        lw_enc = LayerwiseEncoder(list(enc.layers))
        targets = rng.choice(graph.num_nodes, BATCH, replace=False)

        batch = dense_sampler.sample(targets)
        h0 = Tensor(np.random.default_rng(2).normal(
            size=(batch.num_nodes, dim)).astype(np.float32), requires_grad=True)
        t0 = time.perf_counter()
        enc(h0, batch).sum().backward()
        dense_s = time.perf_counter() - t0

        lw_batch = layer_sampler.sample(targets)
        h0l = Tensor(np.random.default_rng(2).normal(
            size=(len(lw_batch.input_nodes), dim)).astype(np.float32),
            requires_grad=True)
        t0 = time.perf_counter()
        lw_enc(h0l, lw_batch).sum().backward()
        lw_s = time.perf_counter() - t0
        rows[depth] = (dense_s * 1e3, lw_s * 1e3)

    report.header("Table 6 (GPU column analogue): forward+backward ms per batch")
    report.row("layers", "dense ms", "layerwise ms", widths=[7, 12, 14])
    for depth, (d, l) in rows.items():
        report.row(depth, f"{d:.1f}", f"{l:.1f}", widths=[7, 12, 14])
    report.line("paper (V100): M-GNN 4/6.1/21 ms vs DGL 4.7/29/215 ms")
    assert rows[3][0] < rows[3][1] * 1.5  # dense path not slower (usually faster)

    sampler = DenseSampler(graph, [10, 10], rng=np.random.default_rng(4))
    batch = sampler.sample(np.arange(BATCH))
    enc = GNNEncoder("graphsage", [dim, dim, dim], rng=np.random.default_rng(5))
    h0 = np.random.default_rng(6).normal(size=(batch.num_nodes, dim)).astype(np.float32)

    def fwd_bwd():
        h = Tensor(h0, requires_grad=True)
        enc(h, batch).sum().backward()

    benchmark(fwd_bwd)
