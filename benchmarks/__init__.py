"""Benchmarks package — makes ``python -m benchmarks.<name>`` runnable."""
