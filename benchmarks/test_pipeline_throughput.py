"""Pipelined execution (paper Figure 2): threaded pipeline vs synchronous.

MariusGNN's throughput rests on overlapping CPU sampling with device compute.
This bench runs the same training workload through the synchronous trainer
and the threaded pipelined trainer, reporting epoch time, pipeline starvation
(time the compute thread waited for batches), and model quality parity.

Note: CPython's GIL limits the overlap NumPy can realize for small kernels,
so the speedup here is modest; the *structure* (bounded queue, sampler
workers, async write-back, staleness tolerance) is what is being exercised.
"""

import numpy as np
import pytest

from repro.graph import load_fb15k237
from repro.train import (LinkPredictionConfig, LinkPredictionTrainer,
                         PipelinedLinkPredictionTrainer)


def test_pipeline_vs_sync(report, benchmark):
    data = load_fb15k237(scale=0.15, seed=0)
    cfg = LinkPredictionConfig(embedding_dim=32, num_layers=2, fanouts=(10, 5),
                               batch_size=512, num_negatives=64, num_epochs=2,
                               eval_negatives=100, eval_max_edges=500, seed=0)

    sync = LinkPredictionTrainer(data, cfg).train()
    piped_trainer = PipelinedLinkPredictionTrainer(data, cfg,
                                                   num_sample_workers=2,
                                                   pipeline_depth=4)
    piped = benchmark.pedantic(piped_trainer.train, rounds=1, iterations=1)

    stats = piped_trainer.pipeline_stats[-1]
    starved_frac = stats.sample_wait_seconds / max(piped.epochs[-1].seconds, 1e-9)

    report.header("Pipelined vs synchronous training (2-layer GraphSage LP)")
    report.row("mode", "epoch s", "MRR", widths=[12, 9, 8])
    report.row("synchronous", f"{sync.mean_epoch_seconds:.2f}",
               f"{sync.final_mrr:.4f}", widths=[12, 9, 8])
    report.row("pipelined", f"{piped.mean_epoch_seconds:.2f}",
               f"{piped.final_mrr:.4f}", widths=[12, 9, 8])
    report.line(f"compute-thread starvation: {starved_frac:.0%} of epoch; "
                f"max write-back backlog: {stats.update_backlog_max} batches")

    # Quality near-parity despite bounded staleness (a few percent of MRR at
    # this small scale, where each node's embedding is updated so frequently
    # that 4-batch-stale gathers are comparatively more common than on the
    # paper's graphs). The staleness lottery at this scale spans roughly
    # 0.65-1.0 of the sync MRR across repeated runs, so the floor detects a
    # collapse, not run-to-run jitter.
    assert piped.final_mrr > sync.final_mrr * 0.6
    # The pipeline must not be pathologically slower than synchronous
    # (3x leaves headroom for a loaded CI machine; a real pathology —
    # serialized stages, a starved compute thread — shows up as far more).
    assert piped.mean_epoch_seconds < sync.mean_epoch_seconds * 3.0
