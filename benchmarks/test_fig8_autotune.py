"""Figure 8 — COMET auto-tuning rules vs grid search.

Runs disk-based GraphSage training over a grid of (p, l, c) configurations on
an FB15k-237 scale model, measuring per-epoch time and final MRR for each,
then checks that the configuration chosen by the Section 6 rules is
near-Pareto-optimal: no grid point is simultaneously meaningfully faster AND
meaningfully more accurate.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.graph import load_fb15k237
from repro.policies import autotune, GraphSpec, HardwareSpec
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         LinkPredictionConfig)

GRID = [
    # (p, l, c)
    (8, 4, 4),
    (16, 8, 4),
    (16, 4, 8),
    (32, 16, 4),
    (32, 8, 8),
]


def _run(data, p, l, c, seed=0):
    cfg = LinkPredictionConfig(embedding_dim=32, num_layers=1, fanouts=(10,),
                               batch_size=512, num_negatives=64, num_epochs=3,
                               eval_negatives=100, eval_max_edges=500, seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskConfig(workdir=Path(tmp), num_partitions=p, num_logical=l,
                          buffer_capacity=c, policy="comet")
        result = DiskLinkPredictionTrainer(data, cfg, disk).train()
    return result.final_mrr, result.mean_epoch_seconds


def test_fig8_autotuning_near_optimal(report, benchmark):
    data = load_fb15k237(scale=0.2, seed=1)
    graph = data.graph

    # Autotune against a synthetic machine scaled to the toy graph: a 4KB
    # block device (so alpha4 lands in the grid's p range) and a CPU budget
    # that holds roughly half the node table — mirroring the paper's
    # partial-residency constraint at 1/5000 the data size.
    spec = GraphSpec(graph.num_nodes, graph.num_edges, 32)
    p_expected = 16
    po = spec.node_overhead / p_expected
    ebo = spec.edge_overhead / p_expected**2
    budget = int(8 * po + 2 * 64 * ebo + (64 << 10))
    hardware = HardwareSpec(cpu_memory_bytes=budget + (1 << 20),
                            disk_block_bytes=4096, fudge_bytes=1 << 20)
    tuned = autotune(spec, hardware, max_physical=p_expected)
    tuned_cfg = (tuned.num_physical, tuned.num_logical, tuned.buffer_capacity)

    def run_grid():
        rows = []
        for (p, l, c) in GRID:
            mrr, secs = _run(data, p, l, c)
            rows.append(((p, l, c), mrr, secs))
        if tuned_cfg not in [g[0] for g in rows]:
            mrr, secs = _run(data, *tuned_cfg)
            rows.append((tuned_cfg, mrr, secs))
        return rows

    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    report.header("Figure 8: grid search vs auto-tuned configuration")
    report.row("(p, l, c)", "MRR", "epoch s", "tag", widths=[13, 8, 8, 10])
    tuned_row = None
    for cfg, mrr, secs in rows:
        tag = "AUTOTUNED" if cfg == tuned_cfg else ""
        if tag:
            tuned_row = (mrr, secs)
        report.row(str(cfg), f"{mrr:.4f}", f"{secs:.2f}", tag,
                   widths=[13, 8, 8, 10])
    assert tuned_row is not None
    t_mrr, t_secs = tuned_row

    best_mrr = max(m for _, m, _ in rows)
    best_secs = min(s for _, _, s in rows)
    report.line()
    report.line(f"auto-tuned: MRR {t_mrr:.4f} (best {best_mrr:.4f}), "
                f"epoch {t_secs:.2f}s (best {best_secs:.2f}s)")
    report.line("paper: auto-tuning lands on the near-optimal corner of the "
                "(runtime, MRR) scan")

    # Near-Pareto: no config dominates the tuned one by >15% on both axes.
    for cfg, mrr, secs in rows:
        dominates = mrr > t_mrr * 1.15 and secs < t_secs / 1.15
        assert not dominates, f"{cfg} dominates the auto-tuned configuration"
    # And the tuned config is not far from the best on accuracy.
    assert t_mrr > best_mrr * 0.8
