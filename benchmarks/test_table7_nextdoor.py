"""Table 7 — GPU sampling: MariusGNN's DENSE vs NextDoor on LiveJournal.

The paper's claim: NextDoor's optimized fused kernels win at 1-2 layers, but
its layerwise semantics re-sample the whole frontier every hop, so edge
counts compound and by 4-5 layers DENSE (built from stock PyTorch ops, reused
samples) is faster — and NextDoor OOMs at 5.

We reproduce the crossover with (a) per-hop edge counts measured from this
repository's real samplers on a LiveJournal scale model and (b) the
calibrated GPU kernel models of :mod:`repro.sim.profiles`.

Paper (ms): layers 1-5, M-GNN 1 / 2.5 / 9.6 / 25 / 32;
            NextDoor 0.1 / 0.5 / 6.5 / 135 / OOM.
"""

import numpy as np
import pytest

from repro.graph import load_livejournal_mini, paper_stats
from repro.sim import (mariusgnn_gpu_sampling_seconds,
                       nextdoor_gpu_sampling_seconds)
from repro.sim.workload import analytic_hop_draws, measure_effective_fanout

PAPER = {"mgnn": {1: 1.0, 2: 2.5, 3: 9.6, 4: 25.0, 5: 32.0},
         "nextdoor": {1: 0.1, 2: 0.5, 3: 6.5, 4: 135.0}}


def test_table7_gpu_sampling_crossover(report, benchmark):
    scale = load_livejournal_mini(num_nodes=40000, num_edges=600000, seed=0).graph
    eff = measure_effective_fanout(scale, 20, directions="out")
    n_full = paper_stats("livejournal").num_nodes

    rows = {}
    for k in range(1, 6):
        dense_draws = analytic_hop_draws(n_full, k, eff, 1000, dense=True)
        # NextDoor is a transit sampler: the sample tree is materialized with
        # no dedup across hops (dedup=False).
        nd_draws = analytic_hop_draws(n_full, k, eff, 1000, dense=False,
                                      dedup=False)
        mg_ms = mariusgnn_gpu_sampling_seconds(dense_draws) * 1e3
        nd_ms = nextdoor_gpu_sampling_seconds(nd_draws) * 1e3
        rows[k] = (mg_ms, nd_ms, sum(dense_draws), sum(nd_draws))

    report.header("Table 7: GPU multi-hop sampling time per batch (ms)")
    report.row("layers", "M-GNN ms", "paper", "NextDoor ms", "paper",
               "dense edges", "nd edges", widths=[7, 9, 7, 12, 7, 12, 12])
    for k, (mg, nd, de, le) in rows.items():
        report.row(k, f"{mg:.2f}", PAPER["mgnn"].get(k, "-"),
                   f"{nd:.2f}", PAPER["nextdoor"].get(k, "OOM"),
                   f"{de:,.0f}", f"{le:,.0f}",
                   widths=[7, 9, 7, 12, 7, 12, 12])
    report.line()
    report.line(f"measured effective fanout E[min(deg,20)] = {eff:.1f}")
    report.line("shape: NextDoor wins shallow; DENSE wins by layer >= 4 as "
                "the un-deduplicated transit tree compounds")

    # Crossover assertions.
    assert rows[1][1] < rows[1][0], "NextDoor must win at 1 layer"
    assert rows[2][1] < rows[2][0], "NextDoor must win at 2 layers"
    assert rows[5][0] < rows[5][1], "DENSE must win at 5 layers"
    # DENSE scales near-flat 4->5 relative to layerwise growth.
    assert rows[5][0] / rows[4][0] < rows[5][1] / rows[4][1] * 1.5

    benchmark(lambda: analytic_hop_draws(n_full, 5, eff, 1000, dense=True))


def test_table7_memory_blowup_drives_oom(report, benchmark):
    """NextDoor's 5-layer OOM: the transit sample tree holds one entry per
    *path* (fanout^k growth, no dedup), while DENSE's footprint is bounded by
    the unique nodes in the graph — an order-of-magnitude gap at 5 hops on a
    16GB V100."""
    scale = load_livejournal_mini(num_nodes=40000, num_edges=600000, seed=0).graph
    eff = measure_effective_fanout(scale, 20, directions="out")
    n_full = paper_stats("livejournal").num_nodes
    dense_total = sum(analytic_hop_draws(n_full, 5, eff, 1000, dense=True))
    nd_total = sum(benchmark.pedantic(
        analytic_hop_draws, args=(n_full, 5, eff, 1000, False, False),
        rounds=1, iterations=1))
    report.header("Table 7 follow-up: 5-layer sample-state footprint")
    report.row("sampler", "entries", "x DENSE", widths=[10, 14, 8])
    report.row("DENSE", f"{dense_total:,.0f}", "1.0", widths=[10, 14, 8])
    report.row("NextDoor", f"{nd_total:,.0f}", f"{nd_total / dense_total:.1f}",
               widths=[10, 14, 8])
    report.line("DENSE additionally caps unique nodes at |V| = 4.8M; the "
                "transit tree does not dedup and OOMs (paper Table 7)")
    assert nd_total > 1.5 * dense_total
