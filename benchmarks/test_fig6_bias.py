"""Figure 6 — empirical behaviour of the COMET hyperparameters.

(a) Model accuracy falls as the Edge Permutation Bias B rises: we train
    disk-based GraphSage under schedules of varying bias and correlate.
(b) Effect of the number of logical partitions l: B rises with l, the number
    of partition sets |S| rises with l, total IO falls with l.
(c) Effect of the number of physical partitions p on B at fixed l and fixed
    buffer fraction.

Paper: Fig 6a shows MRR 0.25->0.27 as B drops 0.95->0.90; Fig 6b shows B in
[0.7, 0.9] rising in l while IO falls ~20%; Fig 6c shows a small decrease of
B in p (0.74 -> 0.71).
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.graph import EdgeBuckets, Graph, PartitionScheme, load_fb15k237
from repro.policies import BetaPolicy, CometPolicy, edge_permutation_bias
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         LinkPredictionConfig)


def _train_graph(data):
    edges = data.split.train
    return Graph(num_nodes=data.graph.num_nodes, src=edges[:, 0],
                 dst=edges[:, -1], rel=edges[:, 1],
                 num_relations=data.graph.num_relations)


def test_fig6a_accuracy_vs_bias(report, benchmark):
    """Train GraphSage under policies spanning a bias range; accuracy and B
    must be negatively associated (Spearman)."""
    data = load_fb15k237(scale=0.2, seed=1)
    graph = _train_graph(data)
    scheme = PartitionScheme.uniform(graph.num_nodes, 16)
    buckets = EdgeBuckets(graph, scheme)

    configs = [
        ("comet l=4", dict(policy="comet", num_partitions=16, num_logical=4,
                           buffer_capacity=8)),
        ("comet l=8", dict(policy="comet", num_partitions=16, num_logical=8,
                           buffer_capacity=4)),
        ("beta", dict(policy="beta", num_partitions=16, num_logical=8,
                      buffer_capacity=4)),
    ]

    def run_all():
        rows = []
        for name, kw in configs:
            if kw["policy"] == "comet":
                pol = CometPolicy(kw["num_partitions"], kw["num_logical"],
                                  kw["buffer_capacity"])
            else:
                pol = BetaPolicy(kw["num_partitions"], kw["buffer_capacity"])
            bias = float(np.mean([
                edge_permutation_bias(pol.plan_epoch(e, np.random.default_rng(e)),
                                      buckets) for e in range(4)]))
            mrrs = []
            for seed in (0, 1):
                cfg = LinkPredictionConfig(
                    embedding_dim=32, num_layers=1, fanouts=(10,),
                    batch_size=512, num_negatives=64, num_epochs=3,
                    eval_negatives=100, eval_max_edges=500, seed=seed)
                with tempfile.TemporaryDirectory() as tmp:
                    disk = DiskConfig(workdir=Path(tmp), **kw)
                    mrrs.append(DiskLinkPredictionTrainer(data, cfg, disk)
                                .train().final_mrr)
            rows.append((name, bias, float(np.mean(mrrs))))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report.header("Figure 6a: accuracy (MRR) vs Edge Permutation Bias")
    report.row("schedule", "bias B", "MRR", widths=[12, 8, 8])
    for name, bias, mrr in rows:
        report.row(name, f"{bias:.3f}", f"{mrr:.4f}", widths=[12, 8, 8])
    rho, _ = scipy_stats.spearmanr([r[1] for r in rows], [r[2] for r in rows])
    report.line(f"Spearman(B, MRR) = {rho:.2f} (paper: negative slope, "
                "MRR .25 -> .27 as B drops .95 -> .90)")
    assert rho < 0.5  # must not be strongly positive; expect negative


def test_fig6b_effect_of_logical_partitions(report, benchmark):
    """Sweep l at fixed p and fixed *physical* buffer capacity c (i.e. fixed
    CPU memory): more logical partitions means more logical slots in the same
    buffer (c_l = c*l/p grows), so each swap moves less data but pairs cover
    faster — B rises with l, |S| rises with l, total IO falls with l
    (paper: B = O(l^a2), |S| = O(l), IO = O(l^-a3))."""
    data = load_fb15k237(scale=0.2, seed=1)
    graph = _train_graph(data)
    p, c = 64, 16
    scheme = PartitionScheme.uniform(graph.num_nodes, p)
    buckets = EdgeBuckets(graph, scheme)

    def sweep():
        out = []
        for l in (8, 16, 32):
            pol = CometPolicy(p, l, c)
            biases, loads, steps = [], [], []
            for e in range(3):
                plan = pol.plan_epoch(e, np.random.default_rng(e))
                biases.append(edge_permutation_bias(plan, buckets))
                loads.append(plan.total_partition_loads)
                steps.append(plan.num_steps)
            out.append((l, float(np.mean(biases)), float(np.mean(steps)),
                        float(np.mean(loads))))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.header("Figure 6b: effect of logical partitions l (p=64, c=16)")
    report.row("l", "bias B", "|S| steps", "partition loads", widths=[4, 8, 10, 16])
    base_io = rows[0][3]
    for l, b, s, io in rows:
        report.row(l, f"{b:.3f}", f"{s:.0f}", f"{io:.0f} ({io / base_io:.2f}x)",
                   widths=[4, 8, 10, 16])
    report.line("paper: B rises with l; #subgraphs = O(l); IO falls with l")
    assert rows[0][1] <= rows[-1][1] + 0.05     # B non-decreasing in l
    assert rows[0][2] < rows[1][2] < rows[2][2]  # |S| increasing
    assert rows[-1][3] < rows[0][3]              # IO falls with l


def test_fig6c_effect_of_physical_partitions(report, benchmark):
    """Sweep p at fixed l and buffer fraction 1/4: B stays flat-to-falling
    (the paper measures a small decrease, 0.74 -> 0.71)."""
    data = load_fb15k237(scale=0.2, seed=1)
    graph = _train_graph(data)

    def sweep():
        out = []
        for p in (16, 32, 64):
            l = 8
            c = 2 * (p // l)
            scheme = PartitionScheme.uniform(graph.num_nodes, p)
            buckets = EdgeBuckets(graph, scheme)
            pol = CometPolicy(p, l, c)
            biases = [edge_permutation_bias(
                pol.plan_epoch(e, np.random.default_rng(e)), buckets)
                for e in range(4)]
            out.append((p, float(np.mean(biases))))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.header("Figure 6c: effect of physical partitions p (l=8, c=p/4)")
    report.row("p", "bias B", widths=[4, 8])
    for p, b in rows:
        report.row(p, f"{b:.3f}", widths=[4, 8])
    report.line("paper: B decreases slightly with p (0.74 -> 0.71); the "
                "effect is small because residency patterns are set by l")
    spread = max(b for _, b in rows) - min(b for _, b in rows)
    assert spread < 0.15  # small effect, as in the paper
