"""Ablation benches for the design choices called out in DESIGN.md.

1. Sample reuse (DENSE) vs per-layer resampling — accuracy parity at equal
   fanouts (Section 7.2's "training with DENSE reaches comparable accuracy").
2. Two-level partitioning — randomized logical grouping vs BETA's
   single-level greedy, isolated from the deferred-X mechanism.
3. Deferred random bucket assignment vs immediate greedy assignment —
   workload balance across partition sets.
4. ComplEx decoder (Marius's other decoder-only model) as an extension.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.graph import (EdgeBuckets, Graph, PartitionScheme, load_fb15k237,
                         load_papers100m_mini)
from repro.policies import BetaPolicy, CometPolicy, edge_permutation_bias
from repro.policies.base import EpochPlan, EpochStep
from repro.train import (LinkPredictionConfig, LinkPredictionTrainer,
                         NodeClassificationConfig, NodeClassificationTrainer)


def test_ablation_dense_accuracy_parity(report, benchmark):
    """DENSE's reduced within-batch randomness must not cost accuracy: train
    the same NC model with DENSE sampling and compare against the layerwise
    sampler run through the shared layer modules."""
    from repro.baselines import LayerwiseEncoder, LayerwiseSampler
    from repro.core import GNNEncoder
    from repro.nn import Adam, ClassificationHead, Tensor, softmax_cross_entropy

    data = load_papers100m_mini(num_nodes=3000, num_edges=25000, feat_dim=24,
                                num_classes=6, seed=0)
    graph = data.graph
    cfg = NodeClassificationConfig(hidden_dim=24, num_layers=2, fanouts=(8, 4),
                                   batch_size=128, num_epochs=8, seed=0)

    dense_result = NodeClassificationTrainer(data, cfg).train()

    # Layerwise twin: identical architecture/optimizer, baseline sampler.
    rng = np.random.default_rng(0)
    enc = GNNEncoder("graphsage", [24, 24, 24], final_activation="relu",
                     rng=np.random.default_rng(0))
    lw_enc = LayerwiseEncoder(list(enc.layers))
    head = ClassificationHead(24, data.num_classes, rng=np.random.default_rng(1))
    params = lw_enc.parameters() + head.parameters()
    optimizer = Adam(params, lr=cfg.lr)
    sampler = LayerwiseSampler(graph, [8, 4], rng=np.random.default_rng(2))

    def train_layerwise():
        for _ in range(cfg.num_epochs):
            order = rng.permutation(data.train_nodes)
            for start in range(0, len(order), cfg.batch_size):
                nodes = np.unique(order[start:start + cfg.batch_size])
                batch = sampler.sample(nodes)
                h0 = Tensor(graph.node_features[batch.input_nodes])
                logits = head(lw_enc(h0, batch))
                loss = softmax_cross_entropy(logits, graph.node_labels[nodes])
                lw_enc.zero_grad()
                head.zero_grad()
                loss.backward()
                optimizer.step()

    benchmark.pedantic(train_layerwise, rounds=1, iterations=1)

    # Evaluate the layerwise twin on the test nodes.
    correct = 0
    test_nodes = data.test_nodes
    for start in range(0, len(test_nodes), 256):
        nodes = np.unique(test_nodes[start:start + 256])
        batch = sampler.sample(nodes)
        h0 = Tensor(graph.node_features[batch.input_nodes])
        preds = head(lw_enc(h0, batch)).data.argmax(axis=1)
        correct += int((preds == graph.node_labels[nodes]).sum())
    lw_acc = correct / len(test_nodes)

    report.header("Ablation 1: DENSE vs layerwise sampling, same model")
    report.row("sampler", "test accuracy", widths=[10, 14])
    report.row("DENSE", f"{dense_result.final_accuracy:.4f}", widths=[10, 14])
    report.row("layerwise", f"{lw_acc:.4f}", widths=[10, 14])
    report.line("paper: DENSE within ~0.5 points of baselines (Section 7.2)")
    assert dense_result.final_accuracy > lw_acc - 0.08


def _immediate_assignment_plan(policy: CometPolicy, epoch: int,
                               rng: np.random.Generator) -> EpochPlan:
    """COMET's schedule S with BETA-style immediate X (ablating mechanism 2)."""
    plan = policy.plan_epoch(epoch, rng)
    done = set()
    steps = []
    for step in plan.steps:
        buckets = []
        for i in step.partitions:
            for j in step.partitions:
                if (i, j) not in done:
                    buckets.append((i, j))
                    done.add((i, j))
        steps.append(EpochStep(partitions=step.partitions, buckets=buckets,
                               admitted=step.admitted))
    return EpochPlan(steps=steps, num_partitions=plan.num_partitions,
                     buffer_capacity=plan.buffer_capacity,
                     policy="comet-immediate")


def test_ablation_deferred_assignment_balances_workload(report, benchmark):
    """Mechanism 2 isolated: same two-level schedule, deferred vs immediate
    bucket assignment. Deferred must balance |X_i| and lower bias."""
    from repro.policies import workload_balance
    g = load_fb15k237(scale=0.2, seed=1).graph
    p, l, c = 16, 8, 4
    scheme = PartitionScheme.uniform(g.num_nodes, p)
    buckets = EdgeBuckets(g, scheme)
    policy = CometPolicy(p, l, c)

    def measure():
        cv_def, cv_imm, b_def, b_imm = [], [], [], []
        for e in range(4):
            deferred = policy.plan_epoch(e, np.random.default_rng(e))
            immediate = _immediate_assignment_plan(policy, e,
                                                   np.random.default_rng(e))
            immediate.validate()
            cv_def.append(workload_balance(deferred, buckets)[0])
            cv_imm.append(workload_balance(immediate, buckets)[0])
            b_def.append(edge_permutation_bias(deferred, buckets))
            b_imm.append(edge_permutation_bias(immediate, buckets))
        return (np.mean(cv_def), np.mean(cv_imm), np.mean(b_def), np.mean(b_imm))

    cv_def, cv_imm, b_def, b_imm = benchmark.pedantic(measure, rounds=1,
                                                      iterations=1)
    report.header("Ablation 2: deferred vs immediate bucket assignment")
    report.row("assignment", "workload CV", "bias B", widths=[11, 12, 8])
    report.row("deferred", f"{cv_def:.2f}", f"{b_def:.3f}", widths=[11, 12, 8])
    report.row("immediate", f"{cv_imm:.2f}", f"{b_imm:.3f}", widths=[11, 12, 8])
    report.line("deferral's balance benefit shows in the CV; its accuracy "
                "benefit acts through within-step shuffling, which the "
                "partition-granular B cannot resolve")
    assert cv_def < cv_imm


def test_ablation_two_level_vs_single_level(report, benchmark):
    """Mechanism 1 isolated: COMET's logically-grouped schedule vs BETA's
    single-level greedy, both with deferred-style bias measurement."""
    g = load_fb15k237(scale=0.2, seed=1).graph
    p, c = 32, 8
    scheme = PartitionScheme.uniform(g.num_nodes, p)
    buckets = EdgeBuckets(g, scheme)

    def measure():
        beta = np.mean([edge_permutation_bias(
            BetaPolicy(p, c).plan_epoch(e, np.random.default_rng(e)), buckets)
            for e in range(4)])
        comet = np.mean([edge_permutation_bias(
            CometPolicy(p, 8, c).plan_epoch(e, np.random.default_rng(e)),
            buckets) for e in range(4)])
        beta_steps = BetaPolicy(p, c).plan_epoch(0, np.random.default_rng(0)).num_steps
        comet_steps = CometPolicy(p, 8, c).plan_epoch(0, np.random.default_rng(0)).num_steps
        return beta, comet, beta_steps, comet_steps

    beta_b, comet_b, beta_steps, comet_steps = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    report.header("Ablation 3: two-level (COMET) vs single-level (BETA)")
    report.row("policy", "bias B", "|S| steps", widths=[8, 8, 10])
    report.row("BETA", f"{beta_b:.3f}", beta_steps, widths=[8, 8, 10])
    report.row("COMET", f"{comet_b:.3f}", comet_steps, widths=[8, 8, 10])
    report.line("two-level grouping cuts both the bias and the number of "
                "partition sets per epoch (Section 5.1)")
    assert comet_b < beta_b
    assert comet_steps < beta_steps


def test_ablation_complex_decoder(report, benchmark):
    """Extension: ComplEx decoder-only training (Marius's other KGE model)
    must learn on the FB15k-237 scale model."""
    data = load_fb15k237(scale=0.08, seed=0)
    cfg = LinkPredictionConfig(embedding_dim=32, encoder="none",
                               decoder="complex", batch_size=512,
                               num_negatives=64, num_epochs=3,
                               eval_negatives=100, eval_max_edges=400, seed=0)
    trainer = LinkPredictionTrainer(data, cfg)
    before = trainer.evaluate().mrr
    result = benchmark.pedantic(trainer.train, rounds=1, iterations=1)
    report.header("Ablation 4: ComplEx decoder-only training")
    report.row("stage", "MRR", widths=[9, 8])
    report.row("initial", f"{before:.4f}", widths=[9, 8])
    report.row("trained", f"{result.final_mrr:.4f}", widths=[9, 8])
    assert result.final_mrr > before
