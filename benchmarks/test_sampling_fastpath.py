"""Sampling fast-path benchmark: swap preparation and DENSE construction.

Establishes the perf baseline (``BENCH_sampling.json`` at the repo root) for
the two hot paths the paper's throughput claims rest on:

* **Per-swap index preparation** (Section 6, Quantity 2): the old path
  re-reads all c^2 in-buffer edge buckets and re-sorts the whole subgraph
  into a fresh :class:`AdjacencyIndex` on every partition-buffer swap; the
  new two-level :class:`PartitionedAdjacencyIndex` sorts only the entering
  partition's buckets and recomposes per-partition sub-runs with copies.
* **build_dense** (Section 4, Algorithm 1): the reference transcription's
  per-hop prepend-concatenate chain and ``np.unique`` + ``np.isin`` dedup
  versus the allocation-lean membership-array fast path.

Run standalone with ``PYTHONPATH=src python -m benchmarks.test_sampling_fastpath``
or under pytest (uses the ``report`` fixture). Both emit BENCH_sampling.json.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.dense import build_dense, build_dense_reference
from repro.graph import (AdjacencyIndex, EdgeBuckets,
                         PartitionedAdjacencyIndex, PartitionScheme,
                         power_law_graph)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sampling.json"

SWAP_CFG = dict(num_nodes=60_000, num_edges=1_500_000, p=16, capacity=4,
                num_swaps=24, seed=0)
DENSE_CFG = dict(num_nodes=60_000, num_edges=1_200_000, fanouts=(30, 20, 10),
                 batch=1000, n_batches=12, seed=0)


def _swap_sequence(p, capacity, num_swaps):
    """Round-robin single-partition swaps (the BETA/COMET stepping shape)."""
    resident = list(range(capacity))
    nxt = capacity
    steps = []
    for _ in range(num_swaps):
        evict = resident.pop(0)
        while nxt % p in resident:
            nxt += 1
        admit = nxt % p
        nxt += 1
        resident.append(admit)
        steps.append((admit, evict, list(resident)))
    return steps


def bench_swap_preparation(num_nodes, num_edges, p, capacity, num_swaps, seed):
    graph = power_law_graph(num_nodes, num_edges, seed=seed)
    scheme = PartitionScheme.uniform(num_nodes, p)
    buckets = EdgeBuckets(graph, scheme)
    steps = _swap_sequence(p, capacity, num_swaps)
    initial = list(range(capacity))

    # Old path: full re-read + re-sort of the in-buffer subgraph per swap.
    t_old = 0.0
    flat = None
    for _, _, resident in steps:
        t0 = time.perf_counter()
        sub = buckets.subgraph_for_partitions(sorted(resident))
        flat = AdjacencyIndex(sub, "both")
        t_old += time.perf_counter() - t0

    results = {}
    for label, cache in (("two_level", False), ("two_level_cached", True)):
        index = PartitionedAdjacencyIndex(scheme, buckets.bucket_endpoints,
                                          initial, cache_evicted=cache)
        t_new = 0.0
        for admit, evict, _ in steps:
            t0 = time.perf_counter()
            index.update_partitions([admit], [evict])
            t_new += time.perf_counter() - t0
        results[label] = t_new / num_swaps

        # Correctness: final two-level state == flat rebuild, sample for sample.
        probe = np.random.default_rng(seed).choice(num_nodes, 2000, replace=False)
        s1 = index.sample_one_hop(probe, 10, rng=np.random.default_rng(1))
        s2 = flat.sample_one_hop(probe, 10, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(s1[0], s2[0])
        np.testing.assert_array_equal(s1[1], s2[1])

    old = t_old / num_swaps
    return {
        "config": dict(num_nodes=num_nodes, num_edges=num_edges, p=p,
                       capacity=capacity, num_swaps=num_swaps),
        "full_rebuild_s_per_swap": old,
        "two_level_s_per_swap": results["two_level"],
        "two_level_cached_s_per_swap": results["two_level_cached"],
        "speedup": old / results["two_level"],
        "speedup_cached": old / results["two_level_cached"],
    }


def bench_build_dense(num_nodes, num_edges, fanouts, batch, n_batches, seed):
    graph = power_law_graph(num_nodes, num_edges, seed=seed)
    index = AdjacencyIndex(graph, "both")
    pick = np.random.default_rng(seed + 1)
    target_sets = [pick.choice(num_nodes, batch, replace=False)
                   for _ in range(n_batches)]
    member = np.zeros(num_nodes, dtype=bool)
    rows = np.empty(num_nodes, dtype=np.int64)

    def run_ref(warm):
        t = 0.0
        for b, targets in enumerate(target_sets):
            rng = np.random.default_rng([seed, b])
            t0 = time.perf_counter()
            ref = build_dense_reference(targets, fanouts, index, rng=rng)
            ref.compute_repr_map()
            t += time.perf_counter() - t0
            if warm:
                return ref
        return t

    def run_fast(warm):
        t = 0.0
        for b, targets in enumerate(target_sets):
            rng = np.random.default_rng([seed, b])
            t0 = time.perf_counter()
            fast = build_dense(targets, fanouts, index, rng=rng,
                               member=member)
            fast.compute_repr_map(row_scratch=rows)
            t += time.perf_counter() - t0
            if warm:
                return fast
        return t

    # Warm-up + correctness: batch 0 must be bit-identical.
    ref0, fast0 = run_ref(warm=True), run_fast(warm=True)
    for name in ("node_id_offsets", "node_ids", "nbr_offsets", "nbrs",
                 "repr_map"):
        np.testing.assert_array_equal(getattr(ref0, name), getattr(fast0, name))
    assert ref0.stats == fast0.stats

    t_ref = run_ref(warm=False)
    t_fast = run_fast(warm=False)
    return {
        "config": dict(num_nodes=num_nodes, num_edges=num_edges,
                       fanouts=list(fanouts), batch=batch,
                       n_batches=n_batches),
        "reference_batches_per_s": n_batches / t_ref,
        "fast_batches_per_s": n_batches / t_fast,
        "speedup": t_ref / t_fast,
        "nodes_per_batch": int(fast0.num_nodes),
        "edges_per_batch": int(len(fast0.nbrs)),
    }


def run_all():
    return {
        "bench": "sampling_fastpath",
        "swap_preparation": bench_swap_preparation(**SWAP_CFG),
        "build_dense": bench_build_dense(**DENSE_CFG),
    }


def _write(results):
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")


def test_sampling_fastpath(report):
    results = run_all()
    _write(results)
    swap, dense = results["swap_preparation"], results["build_dense"]

    report.header("Sampling fast path: per-swap index preparation "
                  f"(p={SWAP_CFG['p']}, c={SWAP_CFG['capacity']})")
    report.row("path", "s/swap", "speedup", widths=[22, 10, 8])
    report.row("full rebuild", f"{swap['full_rebuild_s_per_swap']*1e3:.1f}ms",
               "1.0x", widths=[22, 10, 8])
    report.row("two-level", f"{swap['two_level_s_per_swap']*1e3:.1f}ms",
               f"{swap['speedup']:.1f}x", widths=[22, 10, 8])
    report.row("two-level + cache", f"{swap['two_level_cached_s_per_swap']*1e3:.1f}ms",
               f"{swap['speedup_cached']:.1f}x", widths=[22, 10, 8])

    report.header("build_dense fanouts "
                  f"{DENSE_CFG['fanouts']} batch {DENSE_CFG['batch']}")
    report.row("path", "batches/s", "speedup", widths=[22, 10, 8])
    report.row("reference", f"{dense['reference_batches_per_s']:.2f}", "1.0x",
               widths=[22, 10, 8])
    report.row("fast", f"{dense['fast_batches_per_s']:.2f}",
               f"{dense['speedup']:.1f}x", widths=[22, 10, 8])
    report.line(f"written to {BENCH_PATH.name}")

    # Soft floors (the committed BENCH_sampling.json records the real gap;
    # CI machines under load still must see a clear win).
    assert swap["speedup"] > 1.5
    assert dense["speedup"] > 1.1


SMOKE_SWAP_CFG = dict(num_nodes=8_000, num_edges=120_000, p=8, capacity=4,
                      num_swaps=6, seed=0)
SMOKE_DENSE_CFG = dict(num_nodes=8_000, num_edges=100_000, fanouts=(10, 5),
                       batch=256, n_batches=4, seed=0)


def main(argv=None):
    """Regenerate BENCH_sampling.json, or sanity-check the hot path fast.

    ``--smoke`` runs a reduced configuration (seconds, not minutes) with the
    same bit-exactness correctness checks but does **not** overwrite the
    committed baseline — the hook for PRs touching the sampling hot path:
    run the smoke first; if it passes and the numbers moved, re-run without
    the flag to refresh BENCH_sampling.json.
    """
    import argparse
    parser = argparse.ArgumentParser(prog="benchmarks.test_sampling_fastpath")
    parser.add_argument("--smoke", action="store_true",
                        help="fast correctness + perf sanity run; leaves "
                             "BENCH_sampling.json untouched")
    args = parser.parse_args(argv)
    if args.smoke:
        results = {
            "bench": "sampling_fastpath (smoke; baseline NOT updated)",
            "swap_preparation": bench_swap_preparation(**SMOKE_SWAP_CFG),
            "build_dense": bench_build_dense(**SMOKE_DENSE_CFG),
        }
        print(json.dumps(results, indent=2))
        assert results["swap_preparation"]["speedup"] > 1.0
        assert results["build_dense"]["speedup"] > 1.0
        print("smoke ok: fast paths bit-identical to references and not slower")
        return
    results = run_all()
    _write(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
