"""Benchmark harness support: paper-vs-measured report tables.

Every benchmark records its comparison rows through the ``report`` fixture;
the collected tables are printed in the pytest terminal summary (so they
survive output capturing) and written to ``benchmarks/results/*.txt`` for the
record. EXPERIMENTS.md is the curated version of these outputs.
"""

import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
_TABLES = []


class Report:
    """Accumulates one benchmark's comparison table."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def header(self, text: str) -> None:
        self.lines.append("")
        self.lines.append(text)
        self.lines.append("-" * len(text))

    def row(self, *cells, widths=None) -> None:
        widths = widths or [18] * len(cells)
        self.lines.append("  ".join(str(c).ljust(w) for c, w in zip(cells, widths)))


@pytest.fixture
def report(request):
    rep = Report(request.node.name)
    yield rep
    if rep.lines:
        _TABLES.append(rep)
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{rep.name}.txt"
        out.write_text("\n".join(rep.lines) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("PAPER-VS-MEASURED REPORT (also in benchmarks/results/)")
    terminalreporter.write_line("=" * 78)
    for table in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {table.name}")
        for line in table.lines:
            terminalreporter.write_line(line)


@pytest.fixture
def timer():
    """Simple wall-clock timer for one-shot long operations."""

    class Timer:
        def __enter__(self):
            self.start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            self.seconds = time.perf_counter() - self.start

    return Timer
