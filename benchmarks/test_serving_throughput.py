"""Serving throughput benchmark: batched+locality-ordered vs naive queries.

Establishes the serving perf baseline (``BENCH_serving.json`` at the repo
root) for the `repro.serve` query engine: single-node embedding lookups
against an out-of-core snapshot served through a read-only partition
buffer holding 25% of the partitions, under a uniform-random and a
skewed (Zipf) query mix:

* **naive** — one engine call per query, arrival order: every cold lookup
  pays a partition swap by itself.
* **batched** — the :class:`RequestBatcher` shape: micro-batches of
  ``max_batch`` arrival-ordered queries per engine call; the engine's
  partition-locality ordering makes co-located queries share one swap.

Run standalone with ``PYTHONPATH=src python -m
benchmarks.test_serving_throughput`` or under pytest (uses the ``report``
fixture). ``--smoke`` runs a reduced config without touching the
committed baseline.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.graph import load_freebase86m_mini
from repro.serve import make_query_stream, serve_link_prediction
from repro.train import DiskConfig, DiskLinkPredictionTrainer, LinkPredictionConfig

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SERVE_CFG = dict(num_nodes=40_000, num_edges=200_000, dim=32, p=16, capacity=4,
                 num_queries=2_000, max_batch=256, seed=0)
SMOKE_CFG = dict(num_nodes=5_000, num_edges=25_000, dim=16, p=8, capacity=2,
                 num_queries=300, max_batch=64, seed=0)


def make_snapshot(tmpdir: Path, num_nodes, num_edges, dim, p, capacity, seed):
    """An lp-disk snapshot to serve (random-init table; no training needed —
    the benchmark measures paging, not model quality)."""
    data = load_freebase86m_mini(num_nodes=num_nodes, num_edges=num_edges,
                                 seed=seed)
    config = LinkPredictionConfig(embedding_dim=dim, encoder="none",
                                  num_epochs=0, seed=seed)
    # num_logical=p: the training policy is irrelevant here (0 epochs), it
    # just has to be constructible at any capacity.
    disk = DiskConfig(workdir=tmpdir / "train", num_partitions=p,
                      num_logical=p, buffer_capacity=capacity)
    trainer = DiskLinkPredictionTrainer(data, config, disk,
                                        checkpoint_dir=tmpdir / "ckpt")
    trainer.save_snapshot(0, 0, 1)
    return trainer.snapshots.latest()


def run_mode(engine, queries, batch_size):
    """Serve the stream in arrival-ordered chunks of ``batch_size``
    (1 = naive); returns QPS, per-query latency percentiles, swaps/1k."""
    lat_ms = np.empty(len(queries))
    swaps0 = engine.stats.swaps
    t_total0 = time.perf_counter()
    for start in range(0, len(queries), batch_size):
        chunk = queries[start : start + batch_size]
        t0 = time.perf_counter()
        engine.get_embeddings(chunk)
        # Every query in a micro-batch completes when the batch does.
        lat_ms[start : start + len(chunk)] = 1000 * (time.perf_counter() - t0)
    seconds = time.perf_counter() - t_total0
    swaps = engine.stats.swaps - swaps0
    return {"qps": len(queries) / seconds,
            "p50_ms": float(np.percentile(lat_ms, 50)),
            "p99_ms": float(np.percentile(lat_ms, 99)),
            "swaps_per_1k": 1000.0 * swaps / len(queries)}


def bench_serving(tmpdir: Path, num_nodes, num_edges, dim, p, capacity,
                  num_queries, max_batch, seed):
    snapshot = make_snapshot(Path(tmpdir), num_nodes, num_edges, dim, p,
                             capacity, seed)
    results = {"config": dict(num_nodes=num_nodes, num_edges=num_edges,
                              dim=dim, p=p, capacity=capacity,
                              buffer_fraction=capacity / p,
                              num_queries=num_queries, max_batch=max_batch)}
    for mix in ("random", "zipf"):
        queries = make_query_stream(mix, num_queries, num_nodes, seed)
        per_mix = {}
        for mode, batch in (("naive", 1), ("batched", max_batch)):
            # Fresh engine per mode: each starts from a cold buffer and an
            # untouched QueryLRU, so modes don't warm each other's cache.
            engine = serve_link_prediction(
                snapshot, Path(tmpdir) / f"serve-{mix}-{mode}",
                buffer_capacity=capacity)
            per_mix[mode] = run_mode(engine, queries, batch)
        per_mix["speedup"] = per_mix["batched"]["qps"] / per_mix["naive"]["qps"]
        results[mix] = per_mix
    return results


def run_all():
    import tempfile
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        return {"bench": "serving_throughput",
                "serving": bench_serving(Path(tmp), **SERVE_CFG)}


def _write(results):
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")


def test_serving_throughput(report):
    results = run_all()
    _write(results)
    serving = results["serving"]
    cfg = serving["config"]

    report.header(f"Serving throughput: p={cfg['p']}, buffer {cfg['capacity']} "
                  f"({cfg['buffer_fraction']:.0%} resident), "
                  f"{cfg['num_queries']} lookups, max_batch {cfg['max_batch']}")
    report.row("mix / mode", "QPS", "p50", "p99", "swaps/1k",
               widths=[18, 10, 9, 9, 9])
    for mix in ("random", "zipf"):
        for mode in ("naive", "batched"):
            r = serving[mix][mode]
            report.row(f"{mix} {mode}", f"{r['qps']:,.0f}",
                       f"{r['p50_ms']:.2f}ms", f"{r['p99_ms']:.2f}ms",
                       f"{r['swaps_per_1k']:.1f}", widths=[18, 10, 9, 9, 9])
        report.row(f"{mix} speedup", f"{serving[mix]['speedup']:.1f}x",
                   "", "", "", widths=[18, 10, 9, 9, 9])
    report.line(f"written to {BENCH_PATH.name}")

    # The acceptance floor: batching + locality ordering must clearly beat
    # per-query execution on the skewed mix with a 25%-resident buffer.
    assert serving["zipf"]["speedup"] >= 3.0
    assert serving["random"]["speedup"] >= 3.0
    # Batching shares swaps; it must never page more than naive does.
    for mix in ("random", "zipf"):
        assert (serving[mix]["batched"]["swaps_per_1k"]
                <= serving[mix]["naive"]["swaps_per_1k"] + 1e-9)


def main(argv=None):
    """Regenerate BENCH_serving.json, or sanity-check the engine fast.

    ``--smoke`` runs a reduced configuration in seconds with the same
    speedup direction checks but does **not** overwrite the committed
    baseline (the hook for PRs touching the serving path: smoke first,
    re-run without the flag to refresh the baseline if numbers moved).
    """
    import argparse
    import tempfile
    parser = argparse.ArgumentParser(prog="benchmarks.test_serving_throughput")
    parser.add_argument("--smoke", action="store_true",
                        help="fast reduced run; leaves BENCH_serving.json "
                             "untouched")
    args = parser.parse_args(argv)
    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
            results = {"bench": "serving_throughput (smoke; baseline NOT "
                                "updated)",
                       "serving": bench_serving(Path(tmp), **SMOKE_CFG)}
        print(json.dumps(results, indent=2))
        assert results["serving"]["zipf"]["speedup"] > 1.0
        assert results["serving"]["random"]["speedup"] > 1.0
        print("smoke ok: batched serving beats naive on both mixes")
        return
    results = run_all()
    _write(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
