"""Serving throughput benchmark: batched+locality-ordered vs naive queries,
exact vs ANN (pruned-sweep) top-k, and the multi-worker serving fleet.

Establishes the serving perf baseline (``BENCH_serving.json`` at the repo
root) for the `repro.serve` query engine. Three sections:

**Embedding lookups** against an out-of-core snapshot served through a
read-only partition buffer holding 25% of the partitions, under a
uniform-random and a skewed (Zipf) query mix:

* **naive** — one engine call per query, arrival order: every cold lookup
  pays a partition swap by itself.
* **batched** — the :class:`RequestBatcher` shape: micro-batches of
  ``max_batch`` arrival-ordered queries per engine call; the engine's
  partition-locality ordering makes co-located queries share one swap.

**Top-k target queries** across growing table sizes, exact blockwise
sweep vs the per-partition :class:`~repro.serve.ann.AnnIndex` pruned
sweep. The exact sweep's cost is linear in table size; the pruned
sweep's bound pass skips whole partitions, so its advantage must *grow*
with the table. Recall@k against the exact oracle is measured per query
and the committed baseline asserts the ``RECALL_FLOOR`` (the bound is
sound, so measured recall is 1.0; the floor is the contract).

**Serving fleet** (`repro.fleet`): end-to-end HTTP lookups against 1/2/4
worker processes behind the gateway, uniform and Zipf mixes,
partition-affinity routing vs round-robin (the control arm). Affinity
must page less (summed worker swaps/1k) at every multi-worker point, and
the committed run asserts it also wins QPS on both mixes at the largest
fleet, where each worker's owned range fits its buffer.

Run standalone with ``PYTHONPATH=src python -m
benchmarks.test_serving_throughput`` or under pytest (uses the ``report``
fixture). ``--smoke`` runs a reduced config without touching the
committed baseline.
"""

import http.client
import json
import socket
import threading
import time
from pathlib import Path
from urllib.parse import urlsplit

import numpy as np

from repro.graph import load_freebase86m_mini
from repro.graph.partition import PartitionScheme
from repro.serve import ServingEngine, make_query_stream, serve_link_prediction
from repro.storage import NodeStore
from repro.train import DiskConfig, DiskLinkPredictionTrainer, LinkPredictionConfig
from repro.train.link_prediction import LinkPredictionModel

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SERVE_CFG = dict(num_nodes=40_000, num_edges=200_000, dim=32, p=16, capacity=4,
                 num_queries=2_000, max_batch=256, seed=0)
SMOKE_CFG = dict(num_nodes=5_000, num_edges=25_000, dim=16, p=8, capacity=2,
                 num_queries=300, max_batch=64, seed=0)

TOPK_CFG = dict(sizes=(10_000, 40_000, 160_000), dim=32, p=16, capacity=4,
                k=10, num_queries=64, batch=8, seed=0)
TOPK_SMOKE_CFG = dict(sizes=(2_000, 8_000), dim=16, p=8, capacity=2,
                      k=10, num_queries=16, batch=8, seed=0)

FLEET_CFG = dict(num_nodes=40_000, num_edges=50_000, dim=32, p=16, capacity=4,
                 num_queries=1_200, threads=8, workers=(1, 2, 4), seed=0)
FLEET_SMOKE_CFG = dict(num_nodes=5_000, num_edges=10_000, dim=16, p=8,
                       capacity=2, num_queries=240, threads=4, workers=(1, 2),
                       seed=0)

#: Worst-case recall@k contract for the ANN sweep (see tests/test_serve_ann.py
#: for the property test; the cluster bound is sound so measured recall is
#: 1.0 — the floor exists to catch a bound regression, not to allow slack).
RECALL_FLOOR = 0.95


def make_snapshot(tmpdir: Path, num_nodes, num_edges, dim, p, capacity, seed):
    """An lp-disk snapshot to serve (random-init table; no training needed —
    the benchmark measures paging, not model quality)."""
    data = load_freebase86m_mini(num_nodes=num_nodes, num_edges=num_edges,
                                 seed=seed)
    config = LinkPredictionConfig(embedding_dim=dim, encoder="none",
                                  num_epochs=0, seed=seed)
    # num_logical=p: the training policy is irrelevant here (0 epochs), it
    # just has to be constructible at any capacity.
    disk = DiskConfig(workdir=tmpdir / "train", num_partitions=p,
                      num_logical=p, buffer_capacity=capacity)
    trainer = DiskLinkPredictionTrainer(data, config, disk,
                                        checkpoint_dir=tmpdir / "ckpt")
    trainer.save_snapshot(0, 0, 1)
    return trainer.snapshots.latest()


def run_mode(engine, queries, batch_size):
    """Serve the stream in arrival-ordered chunks of ``batch_size``
    (1 = naive); returns QPS, per-query latency percentiles, swaps/1k."""
    lat_ms = np.empty(len(queries))
    swaps0 = engine.stats.swaps
    t_total0 = time.perf_counter()
    for start in range(0, len(queries), batch_size):
        chunk = queries[start : start + batch_size]
        t0 = time.perf_counter()
        engine.get_embeddings(chunk)
        # Every query in a micro-batch completes when the batch does.
        lat_ms[start : start + len(chunk)] = 1000 * (time.perf_counter() - t0)
    seconds = time.perf_counter() - t_total0
    swaps = engine.stats.swaps - swaps0
    return {"qps": len(queries) / seconds,
            "p50_ms": float(np.percentile(lat_ms, 50)),
            "p99_ms": float(np.percentile(lat_ms, 99)),
            "swaps_per_1k": 1000.0 * swaps / len(queries)}


def bench_serving(tmpdir: Path, num_nodes, num_edges, dim, p, capacity,
                  num_queries, max_batch, seed):
    snapshot = make_snapshot(Path(tmpdir), num_nodes, num_edges, dim, p,
                             capacity, seed)
    results = {"config": dict(num_nodes=num_nodes, num_edges=num_edges,
                              dim=dim, p=p, capacity=capacity,
                              buffer_fraction=capacity / p,
                              num_queries=num_queries, max_batch=max_batch)}
    for mix in ("random", "zipf"):
        queries = make_query_stream(mix, num_queries, num_nodes, seed)
        per_mix = {}
        for mode, batch in (("naive", 1), ("batched", max_batch)):
            # Fresh engine per mode: each starts from a cold buffer and an
            # untouched QueryLRU, so modes don't warm each other's cache.
            engine = serve_link_prediction(
                snapshot, Path(tmpdir) / f"serve-{mix}-{mode}",
                buffer_capacity=capacity)
            per_mix[mode] = run_mode(engine, queries, batch)
        per_mix["speedup"] = per_mix["batched"]["qps"] / per_mix["naive"]["qps"]
        results[mix] = per_mix
    return results


# ---------------------------------------------------------------------------
# Top-k: exact sweep vs ANN pruned sweep
# ---------------------------------------------------------------------------

def make_clustered_table(num_nodes, dim, seed):
    """Gaussian-mixture rows with clusters contiguous in the id space —
    the shape trained partitioned embeddings take (partitions track graph
    communities, and community count grows with graph size). Uniform
    noise would be the ANN worst case (nothing is prunable, and nothing
    is for any index); clustered tables are what a trained snapshot
    actually serves."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 1.0, size=(max(12, num_nodes // 2500), dim))
    assign = np.sort(rng.integers(0, len(centers), num_nodes))
    table = centers[assign] + rng.normal(0, 0.05, size=(num_nodes, dim))
    return table.astype(np.float32)


def make_topk_engine(workdir, table, p, capacity, seed, **kw):
    num_nodes, dim = table.shape
    workdir.mkdir(parents=True, exist_ok=True)
    scheme = PartitionScheme.uniform(num_nodes, p)
    store = NodeStore(workdir / "table.bin", scheme, dim, learnable=False)
    store.initialize(values=table)
    config = LinkPredictionConfig(embedding_dim=dim, encoder="none",
                                  seed=seed)
    model = LinkPredictionModel(config, 1, rng=np.random.default_rng(seed))
    return ServingEngine(model, store, capacity, **kw)


def run_topk_mode(engine, srcs, k, batch, exact):
    """Serve the sources in batched sweeps; returns (ids, qps)."""
    all_ids = []
    t0 = time.perf_counter()
    for start in range(0, len(srcs), batch):
        ids, _ = engine.topk_targets_batch(srcs[start : start + batch], k,
                                           exact=exact)
        all_ids.append(ids)
    seconds = time.perf_counter() - t0
    return np.concatenate(all_ids, axis=0), len(srcs) / seconds


def bench_topk(tmpdir, sizes, dim, p, capacity, k, num_queries, batch, seed):
    out = {"config": dict(sizes=list(sizes), dim=dim, p=p, capacity=capacity,
                          k=k, num_queries=num_queries, batch=batch,
                          recall_floor=RECALL_FLOOR),
           "sizes": []}
    for num_nodes in sizes:
        table = make_clustered_table(num_nodes, dim, seed)
        srcs = np.random.default_rng(seed + 1).integers(0, num_nodes,
                                                        num_queries)
        work = Path(tmpdir) / f"topk-{num_nodes}"
        # Fresh engine per mode: cold buffers, and the exact engine never
        # pays (or benefits from) index maintenance.
        exact_engine = make_topk_engine(work / "exact", table, p, capacity,
                                        seed, ann=False)
        ids_exact, exact_qps = run_topk_mode(exact_engine, srcs, k, batch,
                                             exact=True)
        ann_engine = make_topk_engine(work / "ann", table, p, capacity, seed)
        t0 = time.perf_counter()
        ann_engine.topk_targets(int(srcs[0]), k)     # triggers the lazy build
        build_s = time.perf_counter() - t0
        scanned0 = ann_engine.stats.topk_parts_scanned
        pruned0 = ann_engine.stats.topk_parts_pruned
        rows0 = ann_engine.stats.ann_rows_scored
        ids_ann, ann_qps = run_topk_mode(ann_engine, srcs, k, batch,
                                         exact=False)
        recall = float(np.mean([
            len(np.intersect1d(a, b)) / ids_exact.shape[1]
            for a, b in zip(ids_ann, ids_exact)]))
        scanned = ann_engine.stats.topk_parts_scanned - scanned0
        pruned = ann_engine.stats.topk_parts_pruned - pruned0
        sweeps = -(-num_queries // batch)
        out["sizes"].append({
            "num_nodes": num_nodes,
            "exact": {"qps": exact_qps},
            "ann": {"qps": ann_qps,
                    "recall_at_k": recall,
                    "index_build_s": build_s,
                    "parts_pruned_frac": pruned / max(1, scanned + pruned),
                    "rows_scored_frac":
                        (ann_engine.stats.ann_rows_scored - rows0)
                        / (sweeps * num_nodes)},
            "speedup": ann_qps / exact_qps,
        })
    return out


# ---------------------------------------------------------------------------
# Fleet: affinity vs random routing over 1/2/4 HTTP workers
# ---------------------------------------------------------------------------

def _fleet_spec(snapshot, workdir, workers, affinity, capacity):
    from repro import api
    return api.JobSpec.from_dict({
        "kind": "serve-fleet",
        "serve": {"snapshot": str(snapshot)},
        "storage": {"workdir": str(workdir), "buffer": capacity},
        "fleet": {"workers": workers, "affinity": affinity, "port": 0,
                  "max_batch": 64, "max_wait_ms": 1.0},
    }).resolve()


def _fleet_swaps(fleet):
    """Summed engine swap counter across live workers (from worker stats)."""
    return sum(entry.get("serve", {}).get("swaps", 0)
               for entry in fleet.worker_stats())


def run_fleet_clients(url, queries, threads):
    """Drive the gateway with persistent-connection client threads, each
    issuing single-id ``/v1/embeddings`` lookups; returns QPS + latency."""
    parts = urlsplit(url)
    lat = [[] for _ in range(threads)]
    errors = []

    def client(t):
        conn = http.client.HTTPConnection(parts.hostname, parts.port,
                                          timeout=120)
        conn.connect()
        # Nagle off: a request's headers and body go out as separate
        # writes, and coalescing them behind delayed ACKs serializes the
        # whole benchmark at ~40ms per request.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            for node in queries[t::threads]:
                body = json.dumps({"ids": [int(node)]})
                t0 = time.perf_counter()
                conn.request("POST", "/v1/embeddings", body,
                             {"Content-Type": "application/json"})
                resp = conn.getresponse()
                data = resp.read()
                if resp.status != 200:
                    errors.append((resp.status, data[:200]))
                    return
                lat[t].append(1000.0 * (time.perf_counter() - t0))
        finally:
            conn.close()

    pool = [threading.Thread(target=client, args=(t,))
            for t in range(threads)]
    t_total0 = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    seconds = time.perf_counter() - t_total0
    if errors:
        raise AssertionError(f"fleet clients saw errors: {errors[:3]}")
    lat_ms = np.concatenate([np.asarray(chunk) for chunk in lat])
    assert len(lat_ms) == len(queries)
    return {"qps": len(queries) / seconds,
            "p50_ms": float(np.percentile(lat_ms, 50)),
            "p99_ms": float(np.percentile(lat_ms, 99))}


def bench_fleet(tmpdir, num_nodes, num_edges, dim, p, capacity, num_queries,
                threads, workers, seed):
    """QPS/p99/swaps over worker count x query mix x routing policy.

    ``affinity="range"`` routes each lookup to the worker owning its
    partition (every worker's buffer stays on its own range);
    ``affinity="random"`` round-robins, so every worker's buffer chases
    the full partition set — the control arm. At one worker the policies
    coincide, so only ``range`` runs there (the scaling baseline).
    """
    from repro.fleet import Fleet
    tmpdir = Path(tmpdir)
    snapshot = make_snapshot(tmpdir / "fleet-snap", num_nodes, num_edges,
                             dim, p, capacity, seed)
    out = {"config": dict(num_nodes=num_nodes, dim=dim, p=p,
                          capacity=capacity, num_queries=num_queries,
                          threads=threads, workers=list(workers)),
           "runs": []}
    for n_workers in workers:
        for mix in ("random", "zipf"):
            queries = make_query_stream(mix, num_queries, num_nodes, seed)
            policies = ("range",) if n_workers == 1 else ("range", "random")
            for affinity in policies:
                work = tmpdir / f"fleet-{n_workers}w-{mix}-{affinity}"
                spec = _fleet_spec(snapshot, work, n_workers, affinity,
                                   capacity)
                fleet = Fleet(spec.to_dict(), work)
                fleet.start()
                try:
                    swaps0 = _fleet_swaps(fleet)
                    run = run_fleet_clients(fleet.url, queries, threads)
                    run["swaps_per_1k"] = (1000.0 *
                                           (_fleet_swaps(fleet) - swaps0)
                                           / len(queries))
                finally:
                    fleet.stop()
                out["runs"].append({"workers": n_workers, "mix": mix,
                                    "affinity": affinity, **run})
    return out


def _fleet_run(fleet, workers, mix, affinity):
    for run in fleet["runs"]:
        if (run["workers"], run["mix"], run["affinity"]) == (workers, mix,
                                                             affinity):
            return run
    raise KeyError((workers, mix, affinity))


def assert_fleet_section(fleet, qps_floor=False):
    """Affinity routing must beat random routing on swaps/1k at every
    multi-worker point (each buffer stays on its owned range instead of
    chasing all p partitions). With ``qps_floor`` (the committed run),
    fewer swaps must also cash out as more QPS at the largest fleet,
    where each worker's owned range fits its buffer and affinity
    serves swap-free — at small fleets the skewed mix can trade the
    swap win against load imbalance (the hot ranges concentrate on
    fewer workers), so mid-size QPS is reported, not asserted."""
    multi = sorted({run["workers"] for run in fleet["runs"]
                    if run["workers"] > 1})
    assert multi, "fleet bench needs a multi-worker point"
    for n_workers in multi:
        for mix in ("random", "zipf"):
            aff = _fleet_run(fleet, n_workers, mix, "range")
            rnd = _fleet_run(fleet, n_workers, mix, "random")
            assert aff["swaps_per_1k"] < rnd["swaps_per_1k"], (aff, rnd)
            if qps_floor and n_workers == multi[-1]:
                assert aff["qps"] > rnd["qps"], (aff, rnd)


def run_all():
    import tempfile
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        return {"bench": "serving_throughput",
                "serving": bench_serving(Path(tmp), **SERVE_CFG),
                "topk": bench_topk(Path(tmp), **TOPK_CFG),
                "fleet": bench_fleet(Path(tmp), **FLEET_CFG)}


def _write(results):
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")


def test_serving_throughput(report):
    results = run_all()
    _write(results)
    serving = results["serving"]
    cfg = serving["config"]

    report.header(f"Serving throughput: p={cfg['p']}, buffer {cfg['capacity']} "
                  f"({cfg['buffer_fraction']:.0%} resident), "
                  f"{cfg['num_queries']} lookups, max_batch {cfg['max_batch']}")
    report.row("mix / mode", "QPS", "p50", "p99", "swaps/1k",
               widths=[18, 10, 9, 9, 9])
    for mix in ("random", "zipf"):
        for mode in ("naive", "batched"):
            r = serving[mix][mode]
            report.row(f"{mix} {mode}", f"{r['qps']:,.0f}",
                       f"{r['p50_ms']:.2f}ms", f"{r['p99_ms']:.2f}ms",
                       f"{r['swaps_per_1k']:.1f}", widths=[18, 10, 9, 9, 9])
        report.row(f"{mix} speedup", f"{serving[mix]['speedup']:.1f}x",
                   "", "", "", widths=[18, 10, 9, 9, 9])
    topk = results["topk"]
    report.header(f"Top-k targets: exact sweep vs ANN pruned sweep "
                  f"(k={topk['config']['k']}, p={topk['config']['p']}, "
                  f"batch {topk['config']['batch']})")
    report.row("table size", "exact QPS", "ann QPS", "speedup", "recall",
               "rows scored", widths=[12, 11, 11, 9, 8, 11])
    for entry in topk["sizes"]:
        report.row(f"{entry['num_nodes']:,}",
                   f"{entry['exact']['qps']:,.0f}",
                   f"{entry['ann']['qps']:,.0f}",
                   f"{entry['speedup']:.1f}x",
                   f"{entry['ann']['recall_at_k']:.3f}",
                   f"{entry['ann']['rows_scored_frac']:.1%}",
                   widths=[12, 11, 11, 9, 8, 11])
    fleet = results["fleet"]
    fcfg = fleet["config"]
    report.header(f"Serving fleet: affinity vs random routing over HTTP "
                  f"(p={fcfg['p']}, buffer {fcfg['capacity']}, "
                  f"{fcfg['num_queries']} lookups, {fcfg['threads']} clients)")
    report.row("workers / mix / route", "QPS", "p99", "swaps/1k",
               widths=[24, 10, 9, 9])
    for run in fleet["runs"]:
        report.row(f"{run['workers']}w {run['mix']} {run['affinity']}",
                   f"{run['qps']:,.0f}", f"{run['p99_ms']:.2f}ms",
                   f"{run['swaps_per_1k']:.1f}", widths=[24, 10, 9, 9])
    report.line(f"written to {BENCH_PATH.name}")

    # The acceptance floor: batching + locality ordering must clearly beat
    # per-query execution on the skewed mix with a 25%-resident buffer.
    assert serving["zipf"]["speedup"] >= 3.0
    assert serving["random"]["speedup"] >= 3.0
    # Batching shares swaps; it must never page more than naive does.
    for mix in ("random", "zipf"):
        assert (serving[mix]["batched"]["swaps_per_1k"]
                <= serving[mix]["naive"]["swaps_per_1k"] + 1e-9)
    assert_topk_section(topk)
    assert_fleet_section(fleet, qps_floor=True)


def assert_topk_section(topk):
    """The ANN acceptance floors, shared by the full run and --smoke.

    Recall@k must clear RECALL_FLOOR at every size (the property-tested
    contract), the pruned sweep must actually prune (score a fraction of
    the table), and its QPS advantage over the exact sweep must grow with
    table size — the exact sweep is linear in the table, the pruned sweep
    is not."""
    entries = topk["sizes"]
    for entry in entries:
        assert entry["ann"]["recall_at_k"] >= RECALL_FLOOR, entry
        assert entry["ann"]["rows_scored_frac"] < 0.6, entry
    assert entries[-1]["speedup"] > 1.0
    assert entries[-1]["speedup"] > entries[0]["speedup"]


def main(argv=None):
    """Regenerate BENCH_serving.json, or sanity-check the engine fast.

    ``--smoke`` runs a reduced configuration in seconds with the same
    speedup direction checks but does **not** overwrite the committed
    baseline (the hook for PRs touching the serving path: smoke first,
    re-run without the flag to refresh the baseline if numbers moved).
    """
    import argparse
    import tempfile
    parser = argparse.ArgumentParser(prog="benchmarks.test_serving_throughput")
    parser.add_argument("--smoke", action="store_true",
                        help="fast reduced run; leaves BENCH_serving.json "
                             "untouched")
    args = parser.parse_args(argv)
    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
            results = {"bench": "serving_throughput (smoke; baseline NOT "
                                "updated)",
                       "serving": bench_serving(Path(tmp), **SMOKE_CFG),
                       "topk": bench_topk(Path(tmp), **TOPK_SMOKE_CFG),
                       "fleet": bench_fleet(Path(tmp), **FLEET_SMOKE_CFG)}
        print(json.dumps(results, indent=2))
        assert results["serving"]["zipf"]["speedup"] > 1.0
        assert results["serving"]["random"]["speedup"] > 1.0
        # Smoke keeps the non-timing ANN floors (recall + real pruning);
        # the speedup *growth* assertion needs the full-size tables.
        for entry in results["topk"]["sizes"]:
            assert entry["ann"]["recall_at_k"] >= RECALL_FLOOR, entry
            assert entry["ann"]["rows_scored_frac"] < 0.6, entry
        # Fleet smoke keeps the swap direction check (affinity pages
        # less); the QPS floor needs the full-size run's timing headroom.
        assert_fleet_section(results["fleet"], qps_floor=False)
        print("smoke ok: batched serving beats naive on both mixes; "
              "ann top-k holds the recall floor while pruning; fleet "
              "affinity routing pages less than random routing")
        return
    results = run_all()
    _write(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
