"""Table 8 — COMET vs BETA for disk-based link prediction.

Live disk-based training with both policies on FB15k-237-style graphs,
buffer = 1/4 of partitions (the paper's setting), for DistMult (decoder-only,
Marius's model class) and GraphSage. Reports disk MRR against the in-memory
MRR baseline plus per-epoch runtime; averaged over seeds since small-scale
MRR is noisy.

Paper (FB15k-237 rows): mem MRR | COMET | BETA | epoch s COMET | BETA
  DistMult: .2533 | .2659 | .2431 | 1.78 | 1.95
  GS:       .2825 | .2736 | .2369 | 3.07 | 3.28
Shape to reproduce: COMET disk MRR > BETA disk MRR (7 of 8 combinations in
the paper), COMET epochs no slower, and BETA's bias-driven gap vs in-memory.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.graph import EdgeBuckets, Graph, PartitionScheme, load_fb15k237
from repro.policies import (BetaPolicy, CometPolicy, edge_permutation_bias,
                            workload_balance)
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         LinkPredictionConfig, LinkPredictionTrainer)

P, L, C = 16, 8, 4  # buffer holds 1/4 of partitions, as in Section 7.5
SEEDS = (0, 1, 2)


def _config(encoder, seed):
    if encoder == "none":
        return LinkPredictionConfig(embedding_dim=32, encoder="none",
                                    batch_size=512, num_negatives=64,
                                    num_epochs=4, eval_negatives=100,
                                    eval_max_edges=600, seed=seed)
    return LinkPredictionConfig(embedding_dim=32, encoder=encoder,
                                num_layers=1, fanouts=(10,), batch_size=512,
                                num_negatives=64, num_epochs=4,
                                eval_negatives=100, eval_max_edges=600,
                                seed=seed)


def _run(data, encoder, policy, seed):
    cfg = _config(encoder, seed)
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskConfig(workdir=Path(tmp), num_partitions=P, num_logical=L,
                          buffer_capacity=C, policy=policy)
        result = DiskLinkPredictionTrainer(data, cfg, disk).train()
    return result.final_mrr, result.mean_epoch_seconds


@pytest.mark.parametrize("encoder,label", [("none", "DistMult"),
                                           ("graphsage", "GS")])
def test_table8_policy_comparison(encoder, label, report, benchmark):
    data = load_fb15k237(scale=0.25, seed=1)

    mem = LinkPredictionTrainer(data, _config(encoder, 0)).train()

    comet_mrr, comet_time, beta_mrr, beta_time = [], [], [], []
    for seed in SEEDS:
        m, t = _run(data, encoder, "comet", seed)
        comet_mrr.append(m)
        comet_time.append(t)
        m, t = _run(data, encoder, "beta", seed)
        beta_mrr.append(m)
        beta_time.append(t)

    c_mrr, b_mrr = float(np.mean(comet_mrr)), float(np.mean(beta_mrr))
    c_t, b_t = float(np.mean(comet_time)), float(np.mean(beta_time))

    report.header(f"Table 8 ({label}, fb15k-237 scale model, {len(SEEDS)} seeds)")
    report.row("policy", "disk MRR", "vs mem", "epoch s", widths=[8, 9, 8, 8])
    report.row("memory", f"{mem.final_mrr:.4f}", "-", "-", widths=[8, 9, 8, 8])
    report.row("COMET", f"{c_mrr:.4f}", f"{c_mrr / mem.final_mrr:.2f}",
               f"{c_t:.2f}", widths=[8, 9, 8, 8])
    report.row("BETA", f"{b_mrr:.4f}", f"{b_mrr / mem.final_mrr:.2f}",
               f"{b_t:.2f}", widths=[8, 9, 8, 8])
    report.line("paper DistMult: mem .2533 / COMET .2659 / BETA .2431;"
                " GS: mem .2825 / COMET .2736 / BETA .2369")

    # Direction: COMET recovers more of the in-memory MRR than BETA for GNN
    # models. For decoder-only DistMult the paper notes BETA already achieves
    # near-in-memory MRR (correlation hurts multi-hop aggregation most), so
    # there we only require parity within noise.
    if encoder == "none":
        assert c_mrr > b_mrr * 0.93, \
            f"COMET ({c_mrr:.4f}) must stay within noise of BETA ({b_mrr:.4f})"
    else:
        assert c_mrr > b_mrr, f"COMET ({c_mrr:.4f}) must beat BETA ({b_mrr:.4f})"
    # COMET should not train slower per epoch at equal IO-ish budgets.
    assert c_t < b_t * 1.4

    benchmark.pedantic(lambda: _run(data, encoder, "comet", 0),
                       rounds=1, iterations=1)


def test_table8_bias_explains_gap(report, benchmark):
    """Mechanism check (Figure 6a): BETA's higher Edge Permutation Bias is
    the covariate behind its MRR drop."""
    data = load_fb15k237(scale=0.25, seed=1)
    edges = data.split.train
    graph = Graph(num_nodes=data.graph.num_nodes, src=edges[:, 0],
                  dst=edges[:, -1], rel=edges[:, 1],
                  num_relations=data.graph.num_relations)
    scheme = PartitionScheme.uniform(graph.num_nodes, P)
    buckets = EdgeBuckets(graph, scheme)

    def biases():
        beta = np.mean([edge_permutation_bias(
            BetaPolicy(P, C).plan_epoch(e, np.random.default_rng(e)), buckets)
            for e in range(5)])
        comet = np.mean([edge_permutation_bias(
            CometPolicy(P, L, C).plan_epoch(e, np.random.default_rng(e)), buckets)
            for e in range(5)])
        return beta, comet

    beta_b, comet_b = benchmark.pedantic(biases, rounds=1, iterations=1)
    cv_beta, _ = workload_balance(
        BetaPolicy(P, C).plan_epoch(0, np.random.default_rng(0)), buckets)
    cv_comet, _ = workload_balance(
        CometPolicy(P, L, C).plan_epoch(0, np.random.default_rng(0)), buckets)

    report.header("Table 8 mechanism: bias and workload balance")
    report.row("policy", "bias B", "workload CV", widths=[8, 8, 12])
    report.row("BETA", f"{beta_b:.3f}", f"{cv_beta:.2f}", widths=[8, 8, 12])
    report.row("COMET", f"{comet_b:.3f}", f"{cv_comet:.2f}", widths=[8, 8, 12])
    report.line("lower B -> less example correlation; lower CV -> IO hides "
                "behind compute (Section 7.5)")
    assert comet_b < beta_b
    assert cv_comet < cv_beta
