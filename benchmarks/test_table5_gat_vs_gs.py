"""Table 5 — GraphSage vs GAT on Freebase86M.

The paper's observation: DGL and PyG take the *same* time for GraphSage and
the much more expensive GAT, because they are bottlenecked by CPU mini-batch
construction, while MariusGNN (sampler no longer the bottleneck) slows down
on GAT. Reproduced (a) analytically at full scale and (b) live: our layerwise
baseline sampler's cost is identical across models while the encoder cost
differs sharply.

Paper (min/epoch GS | GAT):  M-GNN_Mem 17.5|52.6   M-GNN_Disk 34.2|56.9
                             DGL 152|151           PyG 108|107
"""

import time

import numpy as np
import pytest

from repro.baselines import LayerwiseSampler
from repro.core import DenseSampler, GNNEncoder
from repro.graph import load_freebase86m_mini
from repro.nn import Tensor
from repro.sim import table5_rows

PAPER = {
    "M-GNN_Mem/GS": 17.5, "M-GNN_Mem/GAT": 52.6,
    "M-GNN_Disk/GS": 34.2, "M-GNN_Disk/GAT": 56.9,
    "DGL/GS": 152.0, "DGL/GAT": 151.0,
    "PyG/GS": 108.0, "PyG/GAT": 107.0,
}


def test_table5_analytical_model(report, benchmark):
    rows = benchmark.pedantic(table5_rows, rounds=1, iterations=1)
    report.header("Table 5 (analytical): GS vs GAT epoch minutes, Freebase86M")
    report.row("system/model", "model min", "paper min", widths=[16, 10, 10])
    for r in rows:
        report.row(r.system, f"{r.epoch_minutes:.1f}", PAPER.get(r.system, "-"),
                   widths=[16, 10, 10])
    by = {r.system: r for r in rows}
    # Baselines: GS and GAT within 15% (sampler-bound).
    assert abs(by["DGL/GS"].epoch_minutes - by["DGL/GAT"].epoch_minutes) \
        / by["DGL/GS"].epoch_minutes < 0.15
    assert abs(by["PyG/GS"].epoch_minutes - by["PyG/GAT"].epoch_minutes) \
        / by["PyG/GS"].epoch_minutes < 0.15
    # M-GNN: GAT meaningfully slower (compute-bound).
    assert by["M-GNN_Mem/GAT"].epoch_minutes > by["M-GNN_Mem/GS"].epoch_minutes * 1.5
    report.line()
    report.line("shape: baselines model-insensitive (sampler-bound); "
                "M-GNN pays for GAT compute")


def test_table5_live_sampler_insensitive_to_model(report, benchmark):
    """Live analogue: baseline sampling cost is identical for GS and GAT
    configs while encoder cost differs by >2x — so a sampler-bound system's
    epoch time cannot distinguish the models."""
    graph = load_freebase86m_mini(num_nodes=20000, num_edges=140000, seed=0).graph
    batch_nodes = np.random.default_rng(0).choice(graph.num_nodes, 512,
                                                  replace=False)

    def sample_time(fanouts, directions):
        sampler = LayerwiseSampler(graph, fanouts, directions=directions,
                                   rng=np.random.default_rng(1))
        times = []
        for _ in range(5):
            t0 = time.perf_counter()
            sampler.sample(batch_nodes)
            times.append(time.perf_counter() - t0)
        return float(np.median(times) * 1e3)

    def encoder_time(kind, fanouts, directions, dim=32):
        sampler = DenseSampler(graph, fanouts, directions=directions,
                               rng=np.random.default_rng(1))
        batch = sampler.sample(batch_nodes)
        enc = GNNEncoder(kind, [dim, dim], rng=np.random.default_rng(2),
                         **({"num_heads": 8} if kind == "gat" else {}))
        h0 = np.random.default_rng(3).normal(
            size=(batch.num_nodes, dim)).astype(np.float32)
        times = []
        for _ in range(3):
            h = Tensor(h0, requires_grad=True)
            t0 = time.perf_counter()
            enc(h, batch).sum().backward()
            times.append(time.perf_counter() - t0)
        return float(np.median(times) * 1e3)

    gs_sample = sample_time([20], "both")
    gat_sample = sample_time([10], "in")
    gs_compute = encoder_time("graphsage", [20], "both")
    gat_compute = encoder_time("gat", [10], "in")

    report.header("Table 5 (live): per-batch sampling vs encoder cost")
    report.row("model", "sample ms", "encoder ms", widths=[6, 10, 11])
    report.row("GS", f"{gs_sample:.1f}", f"{gs_compute:.1f}", widths=[6, 10, 11])
    report.row("GAT", f"{gat_sample:.1f}", f"{gat_compute:.1f}", widths=[6, 10, 11])
    report.line("GAT encoder costs multiples of GS; GAT *sampling* is not "
                "more expensive — a sampler-bound baseline shows equal epochs")

    assert gat_compute > gs_compute * 1.5
    assert gat_sample < gs_sample * 1.5  # sampling does not track model cost

    benchmark(lambda: sample_time([20], "both"))
