"""Table 3 — node classification: epoch time, accuracy, cost per epoch.

Two parts:
1. *Analytical*: the calibrated perf/cost model predicts epoch minutes and
   $/epoch for every (system, dataset) cell at full Papers100M / Mag240M
   scale, printed against the published numbers.
2. *Live*: in-memory vs disk-based training on the Papers100M scale model —
   verifying the accuracy claims (all systems comparable; disk within ~1
   point of memory) with real training runs.

Paper numbers (min/epoch | accuracy | $/epoch):
  Papers:  M-GNN_Mem 0.77|66.38|0.16  M-GNN_Disk 0.83|66.03|0.04
           DGL(4GPU) 3.07|66.98|0.63  PyG(4GPU)  8.01|66.93|1.63
  Mag:     M-GNN_Mem 2.57|63.17|1.05  M-GNN_Disk 0.94|62.53|0.05
           DGL(8GPU) 7.83|63.73|3.19  PyG(1GPU) 19.00|63.47|7.75
"""

import numpy as np
import pytest

from repro.graph import load_papers100m_mini
from repro.sim import table3_rows
from repro.train import (DiskNodeClassificationConfig,
                         DiskNodeClassificationTrainer,
                         NodeClassificationConfig, NodeClassificationTrainer)

PAPER_MINUTES = {
    ("M-GNN_Mem", "papers100m"): 0.77, ("M-GNN_Disk", "papers100m"): 0.83,
    ("DGL", "papers100m"): 3.07, ("PyG", "papers100m"): 8.01,
    ("M-GNN_Mem", "mag240m-cites"): 2.57, ("M-GNN_Disk", "mag240m-cites"): 0.94,
    ("DGL", "mag240m-cites"): 7.83, ("PyG", "mag240m-cites"): 19.0,
}
PAPER_COST = {
    ("M-GNN_Mem", "papers100m"): 0.16, ("M-GNN_Disk", "papers100m"): 0.04,
    ("DGL", "papers100m"): 0.63, ("PyG", "papers100m"): 1.63,
    ("M-GNN_Mem", "mag240m-cites"): 1.05, ("M-GNN_Disk", "mag240m-cites"): 0.05,
    ("DGL", "mag240m-cites"): 3.19, ("PyG", "mag240m-cites"): 7.75,
}


def test_table3_analytical_model(report, benchmark):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    report.header("Table 3 (analytical, full scale): epoch minutes and $/epoch")
    report.row("system", "dataset", "model min", "paper min", "model $", "paper $",
               widths=[12, 14, 10, 10, 9, 9])
    for r in rows:
        key = (r.system, r.dataset)
        report.row(r.system, r.dataset, f"{r.epoch_minutes:.2f}",
                   PAPER_MINUTES.get(key, "-"), f"{r.cost_per_epoch:.2f}",
                   PAPER_COST.get(key, "-"),
                   widths=[12, 14, 10, 10, 9, 9])

    by_key = {(r.system, r.dataset): r for r in rows}
    for ds in ("papers100m", "mag240m-cites"):
        # Shape: M-GNN cheapest, PyG slowest/most expensive; disk cost wins big.
        assert by_key[("M-GNN_Disk", ds)].cost_per_epoch < \
            by_key[("DGL", ds)].cost_per_epoch / 4
        assert by_key[("M-GNN_Mem", ds)].epoch_minutes < \
            by_key[("PyG", ds)].epoch_minutes
    report.line()
    report.line("claim C1 (3-8x faster, up to 64x cheaper): cost ratios "
                f"papers={by_key[('PyG', 'papers100m')].cost_per_epoch / by_key[('M-GNN_Disk', 'papers100m')].cost_per_epoch:.0f}x "
                f"mag={by_key[('PyG', 'mag240m-cites')].cost_per_epoch / by_key[('M-GNN_Disk', 'mag240m-cites')].cost_per_epoch:.0f}x")


def test_table3_live_accuracy(report, benchmark):
    """Live training: disk-based NC reaches in-memory-comparable accuracy."""
    data = load_papers100m_mini(num_nodes=6000, num_edges=60000, feat_dim=32,
                                num_classes=16, seed=0)
    cfg = NodeClassificationConfig(hidden_dim=32, num_layers=3,
                                   fanouts=(15, 10, 5), batch_size=256,
                                   num_epochs=8, seed=0)

    mem_result = NodeClassificationTrainer(data, cfg).train()

    import tempfile
    from pathlib import Path
    with tempfile.TemporaryDirectory() as tmp:
        disk_cfg = DiskNodeClassificationConfig(workdir=Path(tmp),
                                                num_partitions=16,
                                                buffer_capacity=8)
        trainer = DiskNodeClassificationTrainer(data, cfg, disk_cfg)
        disk_result = benchmark.pedantic(trainer.train, rounds=1, iterations=1)

    report.header("Table 3 (live, scale model): accuracy mem vs disk")
    report.row("mode", "accuracy", "epoch s", "io MiB/epoch", widths=[10, 10, 9, 13])
    report.row("memory", f"{mem_result.final_accuracy:.4f}",
               f"{mem_result.mean_epoch_seconds:.2f}", "-",
               widths=[10, 10, 9, 13])
    report.row("disk", f"{disk_result.final_accuracy:.4f}",
               f"{disk_result.mean_epoch_seconds:.2f}",
               f"{disk_result.epochs[0].io_bytes >> 20}",
               widths=[10, 10, 9, 13])
    report.line("paper: 66.38 vs 66.03 (papers), 63.17 vs 62.53 (mag) — "
                "disk within ~0.6 points")

    chance = 1.0 / data.num_classes
    assert mem_result.final_accuracy > 3 * chance
    assert disk_result.final_accuracy > mem_result.final_accuracy - 0.08
