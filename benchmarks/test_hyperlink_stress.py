"""Section 7.3 — extreme-scale stress test: the Hyperlink-2012 graph.

The paper trains a GraphSage + DistMult model over 3.5B nodes / 128B edges on
one P3.2xLarge (1 GPU, 60GB RAM, 4TB SSD) at 194k edges/sec — $564/epoch.

Two parts here:
1. *Analytical*: the calibrated model predicts throughput and $/epoch for the
   full graph (sampling workload measured from a degree-matched scale model).
2. *Live structure test*: an actual out-of-core run on the largest synthetic
   graph that fits this machine, with buffer << graph, verifying the storage
   layer sustains a stable edges/sec rate across the whole epoch.
"""

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.graph import load_wikikg90m_mini, paper_stats, power_law_graph
from repro.graph.datasets import LinkPredictionDataset
from repro.graph.edge_list import split_edges
from repro.policies import autotune_from_dataset
from repro.sim import MARIUSGNN, P3_2XLARGE, hyperlink_stress_estimate
from repro.sim.tables import _comet_loads
from repro.sim.workload import (gnn_flops, measure_effective_fanout,
                                analytic_dense_workload)
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         LinkPredictionConfig)


def test_hyperlink_analytical_throughput(report, benchmark):
    stats = paper_stats("hyperlink2012")
    scale = load_wikikg90m_mini(num_nodes=12000, num_edges=250000, seed=0).graph
    eff = measure_effective_fanout(scale, 10, "both")
    batch = 1000 + 500  # batch + shared negatives (paper: 500 negatives)
    wl = analytic_dense_workload(stats.num_nodes, [10], [eff], batch)
    flops = gnn_flops(wl, 50, 50, 1) + 2.0 * 1000 * 500 * 50

    tune = autotune_from_dataset(stats.num_nodes, stats.num_edges, 50,
                                 P3_2XLARGE.cpu_memory_gb,
                                 has_relations=False, max_physical=8192)
    loads = _comet_loads(tune.num_logical, tune.logical_capacity,
                         tune.num_physical)
    est = benchmark.pedantic(
        hyperlink_stress_estimate,
        args=(MARIUSGNN, P3_2XLARGE, stats, wl, flops, 50, loads,
              tune.num_physical),
        rounds=1, iterations=1)

    report.header("Section 7.3: Hyperlink-2012 stress test (analytical)")
    report.row("quantity", "model", "paper", widths=[22, 14, 14])
    report.row("edges/sec", f"{est.edges_per_second:,.0f}", "194,000",
               widths=[22, 14, 14])
    report.row("epoch days", f"{est.epoch_days:.1f}",
               f"{128e9 / 194e3 / 86400:.1f}", widths=[22, 14, 14])
    report.row("$/epoch", f"{est.cost_per_epoch:,.0f}", "564",
               widths=[22, 14, 14])
    report.row("autotuned p / l / c", f"{tune.num_physical}/{tune.num_logical}"
               f"/{tune.buffer_capacity}", "-", widths=[22, 14, 14])

    # The model extrapolates two orders of magnitude beyond its calibration
    # graphs (OGB-scale) here, so the tolerance is wide: the prediction must
    # agree with the paper's measured 194k edges/sec within ~one order of
    # magnitude and must confirm the qualitative claim — a single P3.2xLarge
    # completes an epoch in days, not months, at hundreds (not tens of
    # thousands) of dollars.
    assert 194_000 / 16 < est.edges_per_second < 194_000 * 16
    assert est.epoch_days < 30
    assert est.cost_per_epoch < 5_000


def test_hyperlink_live_structure(report, benchmark):
    """Out-of-core epoch on the largest graph this machine trains quickly:
    buffer holds 1/8 of partitions, so nearly all data lives on disk."""
    graph = power_law_graph(60_000, 400_000, exponent=2.3, seed=0)
    graph.name = "hyperlink-scale-model"
    data = LinkPredictionDataset(
        graph=graph, split=split_edges(graph, 0.01, 0.02,
                                       rng=np.random.default_rng(1)),
        stats=paper_stats("hyperlink2012"), embedding_dim=32)
    cfg = LinkPredictionConfig(embedding_dim=32, num_layers=1, fanouts=(10,),
                               batch_size=2000, num_negatives=100,
                               num_epochs=1, eval_negatives=50,
                               eval_max_edges=200, seed=0)

    def run():
        with tempfile.TemporaryDirectory() as tmp:
            disk = DiskConfig(workdir=Path(tmp), num_partitions=32,
                              num_logical=16, buffer_capacity=4,
                              policy="comet")
            trainer = DiskLinkPredictionTrainer(data, cfg, disk)
            t0 = time.perf_counter()
            result = trainer.train()
            wall = time.perf_counter() - t0
        return result, wall

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    epoch = result.epochs[0]
    eps = len(data.split.train) / epoch.seconds

    report.header("Section 7.3 (live): out-of-core epoch, buffer = 1/8 of graph")
    report.row("quantity", "value", widths=[22, 16])
    report.row("train edges", f"{len(data.split.train):,}", widths=[22, 16])
    report.row("edges/sec", f"{eps:,.0f}", widths=[22, 16])
    report.row("disk IO / epoch", f"{epoch.io_bytes >> 20} MiB", widths=[22, 16])
    report.row("partition loads", epoch.partition_loads, widths=[22, 16])
    report.row("final MRR", f"{result.final_mrr:.4f}", widths=[22, 16])
    report.line("the run must complete a full epoch with every edge bucket "
                "visited exactly once while only 4/32 partitions are resident")

    assert epoch.partition_loads > 32  # many swaps: truly out-of-core
    assert eps > 0
    assert np.isfinite(result.final_mrr)
