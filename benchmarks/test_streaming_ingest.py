"""Streaming ingest benchmark: event throughput and staleness vs cadence.

Establishes the streaming perf baseline (``BENCH_streaming.json`` at the
repo root) for the `repro.stream` subsystem:

* **ingest throughput** — events/second appended to the live graph, both
  *raw* (delta log only, nothing attached) and *coherent* (a resident
  partition-aware sampler index and a serving engine follow the stream, so
  every ingest pays the refresh of the touched resident buckets — the
  realistic serving-while-ingesting cost).
* **staleness vs compaction cadence** — the same event stream run at
  several compact-every thresholds, recording mean/max staleness (pending
  un-compacted events a query observes), the number of compactions, and
  the time spent compacting. Frequent compaction buys low staleness with
  compaction CPU; the JSON records the trade-off curve.

The run finishes with a streamed-vs-rebuilt equivalence check, so the
committed numbers always come from a correct stream.

Run standalone with ``PYTHONPATH=src python -m
benchmarks.test_streaming_ingest`` or under pytest (uses the ``report``
fixture). ``--smoke`` runs a reduced config without touching the
committed baseline.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.sampler import DenseSampler
from repro.graph.edge_list import Graph
from repro.graph.partition import PartitionScheme
from repro.serve.engine import ServingEngine
from repro.storage.edge_store import EdgeBucketStore
from repro.storage.node_store import NodeStore
from repro.stream import Compactor, LiveGraph, synth_events
from repro.train.link_prediction import (LinkPredictionConfig,
                                         LinkPredictionModel)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

STREAM_CFG = dict(num_nodes=20_000, num_edges=100_000, dim=16, p=16,
                  capacity=4, num_events=24_000, event_batch=500,
                  delete_fraction=0.1, cadences=(2_000, 8_000, 24_000),
                  reader_threads=(0, 2, 4), concurrent_events=12_000,
                  seed=0)
SMOKE_CFG = dict(num_nodes=3_000, num_edges=15_000, dim=8, p=8, capacity=2,
                 num_events=3_000, event_batch=250, delete_fraction=0.1,
                 cadences=(500, 3_000), reader_threads=(0, 2),
                 concurrent_events=2_000, seed=0)


def build_live(tmp: Path, num_nodes, num_edges, dim, p, seed, name,
               lock_stripes=8) -> LiveGraph:
    rng = np.random.default_rng(seed)
    graph = Graph(num_nodes=num_nodes, src=rng.integers(0, num_nodes, num_edges),
                  dst=rng.integers(0, num_nodes, num_edges))
    scheme = PartitionScheme.uniform(num_nodes, p)
    store = NodeStore(tmp / f"{name}-nodes.bin", scheme, dim, learnable=True)
    store.initialize(rng=np.random.default_rng(seed + 1))
    edges = EdgeBucketStore(tmp / f"{name}-edges.bin", graph, scheme)
    return LiveGraph(store, edges, seed=seed, lock_stripes=lock_stripes)


def run_stream(live, rng, num_events, event_batch, delete_fraction,
               compact_every=0):
    """Ingest ~``num_events``; returns (appended, ingest_seconds,
    compact_seconds, staleness_samples, compactions). ``appended`` counts
    events the log actually took (a delete batch comes up short when its
    sampled bucket is empty) — throughput must divide by that, not by the
    requested total."""
    compactor = Compactor(live)
    t_ingest = t_compact = 0.0
    staleness = []
    appended = 0
    asked = 0
    while asked < num_events:
        count = min(event_batch, num_events - asked)
        ins, dels = synth_events(live, rng, count, delete_fraction)
        t0 = time.perf_counter()
        lo, hi = live.insert_edges(ins)
        appended += hi - lo
        if dels is not None:
            lo, hi = live.delete_edges(dels)
            appended += hi - lo
        t_ingest += time.perf_counter() - t0
        asked += count
        staleness.append(live.staleness())
        if compact_every and live.staleness() >= compact_every:
            t0 = time.perf_counter()
            compactor.compact()
            t_compact += time.perf_counter() - t0
    return appended, t_ingest, t_compact, staleness, compactor.compactions


def bench_ingest_throughput(tmp, cfg):
    """Raw (log only) vs coherent (index + engine attached) ingest rate."""
    rng = np.random.default_rng(cfg["seed"] + 11)
    out = {}
    for mode in ("raw", "coherent"):
        live = build_live(tmp, cfg["num_nodes"], cfg["num_edges"], cfg["dim"],
                          cfg["p"], cfg["seed"], f"ingest-{mode}")
        if mode == "coherent":
            model_cfg = LinkPredictionConfig(embedding_dim=cfg["dim"],
                                             encoder="none", seed=0)
            model = LinkPredictionModel(model_cfg, 1,
                                        rng=np.random.default_rng(0))
            engine = ServingEngine.over_live(live, model,
                                             buffer_capacity=cfg["capacity"])
            engine.get_embeddings(np.arange(64))       # warm residency
            sampler = DenseSampler.from_partitions(
                live.scheme, live.bucket_endpoints,
                range(cfg["capacity"]), [10],
                rng=np.random.default_rng(1))
            live.add_bucket_listener(sampler.index.refresh_buckets)
            live.add_growth_listener(sampler.index.extend_nodes)
        appended, t_ingest, _, _, _ = run_stream(live, rng,
                                                 cfg["num_events"],
                                                 cfg["event_batch"],
                                                 cfg["delete_fraction"])
        out[mode] = {"events": appended,
                     "seconds": t_ingest,
                     "events_per_sec": appended / max(t_ingest, 1e-9)}
    return out


def bench_staleness_vs_cadence(tmp, cfg):
    """The same stream at several compaction cadences."""
    out = {}
    for cadence in cfg["cadences"]:
        live = build_live(tmp, cfg["num_nodes"], cfg["num_edges"], cfg["dim"],
                          cfg["p"], cfg["seed"], f"cadence-{cadence}")
        rng = np.random.default_rng(cfg["seed"] + 29)   # identical stream
        _, t_ingest, t_compact, staleness, compactions = run_stream(
            live, rng, cfg["num_events"], cfg["event_batch"],
            cfg["delete_fraction"], compact_every=cadence)
        out[str(cadence)] = {
            "compactions": compactions,
            "mean_staleness": float(np.mean(staleness)),
            "max_staleness": int(max(staleness)),
            "ingest_seconds": t_ingest,
            "compact_seconds": t_compact,
        }
    return out


def bench_concurrent_ingest_serve(tmp, cfg):
    """Ingest+serve concurrency curve: two writer threads race reader
    threads against the same live graph, once with the striped ingest
    locks (8 stripes) and once degenerated to a single stripe — the
    events/s and query-QPS columns show what the per-bucket-range
    striping buys when ingest and serving share the process."""
    import threading
    out = {}
    n_writers = 2
    for arm, stripes in (("striped", 8), ("single", 1)):
        per = {}
        for readers in cfg["reader_threads"]:
            live = build_live(tmp, cfg["num_nodes"], cfg["num_edges"],
                              cfg["dim"], cfg["p"], cfg["seed"],
                              f"conc-{arm}-{readers}", lock_stripes=stripes)
            model_cfg = LinkPredictionConfig(embedding_dim=cfg["dim"],
                                             encoder="none", seed=0)
            model = LinkPredictionModel(model_cfg, 1,
                                        rng=np.random.default_rng(0))
            engine = ServingEngine.over_live(live, model,
                                             buffer_capacity=cfg["capacity"])
            engine.get_embeddings(np.arange(64))       # warm residency
            per_writer = cfg["concurrent_events"] // n_writers
            batches = []
            for w in range(n_writers):
                rng = np.random.default_rng(cfg["seed"] + 51 + w)
                chunks = []
                for start in range(0, per_writer, cfg["event_batch"]):
                    n = min(cfg["event_batch"], per_writer - start)
                    chunks.append(np.stack(
                        [rng.integers(0, cfg["num_nodes"], n),
                         rng.integers(0, cfg["num_nodes"], n)], axis=1))
                batches.append(chunks)
            stop = threading.Event()
            counts = [0] * max(readers, 1)
            errors = []

            def write(w):
                try:
                    for chunk in batches[w]:
                        live.insert_edges(chunk)
                except Exception as exc:   # pragma: no cover - failure path
                    errors.append(exc)

            def read(k):
                rng = np.random.default_rng(cfg["seed"] + 91 + k)
                try:
                    while not stop.is_set():
                        engine.get_embeddings(
                            rng.integers(0, cfg["num_nodes"], 64))
                        counts[k] += 1
                except Exception as exc:   # pragma: no cover - failure path
                    errors.append(exc)

            writer_threads = [threading.Thread(target=write, args=(w,))
                              for w in range(n_writers)]
            reader_threads = [threading.Thread(target=read, args=(k,))
                              for k in range(readers)]
            t0 = time.perf_counter()
            for t in writer_threads + reader_threads:
                t.start()
            for t in writer_threads:
                t.join()
            seconds = time.perf_counter() - t0
            stop.set()
            for t in reader_threads:
                t.join()
            assert not errors, errors
            appended = live.log.events_appended
            per[str(readers)] = {
                "events": int(appended),
                "seconds": seconds,
                "events_per_sec": appended / max(seconds, 1e-9),
                "queries": int(sum(counts[:readers])),
                "query_qps": sum(counts[:readers]) / max(seconds, 1e-9),
            }
        out[arm] = per
    return out


def verify_equivalence(tmp, cfg):
    """Streamed view == offline rebuild after a fresh interleaved run."""
    live = build_live(tmp, cfg["num_nodes"] // 2, cfg["num_edges"] // 2,
                      cfg["dim"], cfg["p"], cfg["seed"], "verify")
    rng = np.random.default_rng(cfg["seed"] + 43)
    compactor = Compactor(live)
    for step in range(8):
        ins, dels = synth_events(live, rng, cfg["event_batch"],
                                 cfg["delete_fraction"])
        live.insert_edges(ins)
        if dels is not None:
            live.delete_edges(dels)
        if step % 3 == 2:
            compactor.compact()
    final = live.materialize()
    rebuilt = EdgeBucketStore(tmp / "verify-rebuilt.bin", final, live.scheme)
    p = live.num_partitions
    for i in range(p):
        for j in range(p):
            assert np.array_equal(live.bucket_edges(i, j, record_io=False),
                                  rebuilt.read_bucket(i, j, record_io=False))
    return {"checked_buckets": p * p, "live_edges": int(final.num_edges)}


def bench_streaming(tmp: Path, cfg: dict) -> dict:
    return {"config": dict(cfg),
            "ingest": bench_ingest_throughput(tmp, cfg),
            "staleness_vs_cadence": bench_staleness_vs_cadence(tmp, cfg),
            "concurrency": bench_concurrent_ingest_serve(tmp, cfg),
            "equivalence": verify_equivalence(tmp, cfg)}


def run_all(cfg=STREAM_CFG):
    import tempfile
    with tempfile.TemporaryDirectory(prefix="repro-stream-bench-") as tmp:
        return {"bench": "streaming_ingest",
                "streaming": bench_streaming(Path(tmp), cfg)}


def _write(results):
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _check_directions(streaming):
    ingest = streaming["ingest"]
    assert ingest["raw"]["events_per_sec"] > 10_000
    assert ingest["coherent"]["events_per_sec"] > 1_000
    cadences = sorted(int(c) for c in streaming["staleness_vs_cadence"])
    rows = [streaming["staleness_vs_cadence"][str(c)] for c in cadences]
    # Tighter cadence => more compactions and lower observed staleness.
    assert rows[0]["compactions"] >= rows[-1]["compactions"]
    assert rows[0]["mean_staleness"] <= rows[-1]["mean_staleness"]
    for arm, curve in streaming["concurrency"].items():
        for readers, r in curve.items():
            # Every arm must still ingest at a sane clip, every event must
            # land, and reader threads must have made real progress.
            assert r["events_per_sec"] > 500, (arm, readers)
            assert r["events"] == streaming["config"]["concurrent_events"]
            if int(readers):
                assert r["queries"] > 0, (arm, readers)


def test_streaming_ingest(report):
    results = run_all()
    _write(results)
    streaming = results["streaming"]
    cfg = streaming["config"]

    report.header(f"Streaming ingest: {cfg['num_nodes']:,} nodes, "
                  f"{cfg['num_edges']:,} base edges, p={cfg['p']}, "
                  f"{cfg['num_events']:,} events "
                  f"({cfg['delete_fraction']:.0%} deletes)")
    for mode in ("raw", "coherent"):
        r = streaming["ingest"][mode]
        report.row(f"ingest {mode}", f"{r['events_per_sec']:,.0f} ev/s",
                   f"{r['seconds']:.2f}s", widths=[20, 18, 10])
    report.row("cadence", "compactions", "mean stale", "max stale",
               "compact s", widths=[12, 12, 12, 12, 10])
    for cadence in cfg["cadences"]:
        r = streaming["staleness_vs_cadence"][str(cadence)]
        report.row(str(cadence), r["compactions"],
                   f"{r['mean_staleness']:.0f}", r["max_staleness"],
                   f"{r['compact_seconds']:.2f}", widths=[12, 12, 12, 12, 10])
    report.row("concurrency", "readers", "events/s", "query QPS",
               widths=[12, 10, 14, 14])
    for arm, curve in streaming["concurrency"].items():
        for readers in sorted(curve, key=int):
            r = curve[readers]
            report.row(arm, readers, f"{r['events_per_sec']:,.0f}",
                       f"{r['query_qps']:,.0f}", widths=[12, 10, 14, 14])
    eq = streaming["equivalence"]
    report.line(f"equivalence: {eq['checked_buckets']} buckets vs offline "
                f"rebuild, {eq['live_edges']:,} live edges — identical")
    report.line(f"written to {BENCH_PATH.name}")
    _check_directions(streaming)


def main(argv=None):
    """Regenerate BENCH_streaming.json, or sanity-check the stream fast.

    ``--smoke`` runs a reduced configuration in seconds with the same
    direction checks but does **not** overwrite the committed baseline
    (the hook for PRs touching the streaming path: smoke first, re-run
    without the flag to refresh the baseline if numbers moved).
    """
    import argparse
    parser = argparse.ArgumentParser(prog="benchmarks.test_streaming_ingest")
    parser.add_argument("--smoke", action="store_true",
                        help="fast reduced run; leaves BENCH_streaming.json "
                             "untouched")
    args = parser.parse_args(argv)
    if args.smoke:
        results = run_all(SMOKE_CFG)
        print(json.dumps(results, indent=2))
        _check_directions(results["streaming"])
        print("smoke ok: ingest throughput floors hold, staleness falls "
              "with tighter compaction cadence, equivalence verified")
        return
    results = run_all()
    _write(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
