"""Table 4 — link prediction: epoch time, MRR, cost per epoch.

Analytical rows at Freebase86M / WikiKG90Mv2 scale plus a live scale-model
run comparing in-memory vs disk-based (COMET) MRR.

Paper numbers (min/epoch | MRR | $/epoch):
  FB:   M-GNN_Mem 17.5|.7285|3.57  M-GNN_Disk 34.2|.7216|1.74
        DGL 152|.7091|31.0         PyG 108|.7267|22.0
  Wiki: M-GNN_Mem 46.6|.4655|9.38  M-GNN_Disk 69.9|.4156|3.56
        DGL 844|OOT|172            PyG 312|.4683|63.6
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.graph import load_fb15k237
from repro.sim import table4_rows
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         LinkPredictionConfig, LinkPredictionTrainer)

PAPER = {
    ("M-GNN_Mem", "freebase86m"): (17.5, 3.57),
    ("M-GNN_Disk", "freebase86m"): (34.2, 1.74),
    ("DGL", "freebase86m"): (152.0, 31.0),
    ("PyG", "freebase86m"): (108.0, 22.0),
    ("M-GNN_Mem", "wikikg90mv2"): (46.6, 9.38),
    ("M-GNN_Disk", "wikikg90mv2"): (69.9, 3.56),
    ("DGL", "wikikg90mv2"): (844.0, 172.0),
    ("PyG", "wikikg90mv2"): (312.0, 63.6),
}


def test_table4_analytical_model(report, benchmark):
    rows = benchmark.pedantic(table4_rows, rounds=1, iterations=1)
    report.header("Table 4 (analytical, full scale): epoch minutes and $/epoch")
    report.row("system", "dataset", "model min", "paper min", "model $", "paper $",
               widths=[12, 13, 10, 10, 9, 9])
    for r in rows:
        paper_min, paper_cost = PAPER.get((r.system, r.dataset), ("-", "-"))
        report.row(r.system, r.dataset, f"{r.epoch_minutes:.1f}", paper_min,
                   f"{r.cost_per_epoch:.2f}", paper_cost,
                   widths=[12, 13, 10, 10, 9, 9])
    by_key = {(r.system, r.dataset): r for r in rows}
    for ds in ("freebase86m", "wikikg90mv2"):
        mem = by_key[("M-GNN_Mem", ds)]
        disk = by_key[("M-GNN_Disk", ds)]
        dgl = by_key[("DGL", ds)]
        pyg = by_key[("PyG", ds)]
        # Shape: M-GNN mem fastest; baselines several-x slower; disk is the
        # cheapest option (paper: 13-18x cheaper than baselines).
        assert mem.epoch_minutes < dgl.epoch_minutes / 4
        assert mem.epoch_minutes < pyg.epoch_minutes / 4
        assert disk.cost_per_epoch < dgl.cost_per_epoch / 8
        assert disk.epoch_minutes >= mem.epoch_minutes * 0.9
    report.line()
    mem, dgl = by_key[("M-GNN_Mem", "freebase86m")], by_key[("DGL", "freebase86m")]
    report.line(f"claim C2 (6x faster, 13-18x cheaper): FB speed "
                f"{dgl.epoch_minutes / mem.epoch_minutes:.1f}x, cost "
                f"{dgl.cost_per_epoch / by_key[('M-GNN_Disk', 'freebase86m')].cost_per_epoch:.0f}x")


def test_table4_live_mem_vs_disk_mrr(report, benchmark):
    """Live: disk-based COMET training reaches near-in-memory MRR."""
    data = load_fb15k237(scale=0.15, seed=0)
    cfg = LinkPredictionConfig(embedding_dim=32, num_layers=1, fanouts=(10,),
                               batch_size=512, num_negatives=64, num_epochs=4,
                               eval_negatives=100, eval_max_edges=800, seed=0)

    mem = LinkPredictionTrainer(data, cfg).train()
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskConfig(workdir=Path(tmp), num_partitions=16, num_logical=8,
                          buffer_capacity=4, policy="comet")
        trainer = DiskLinkPredictionTrainer(data, cfg, disk)
        disk_result = benchmark.pedantic(trainer.train, rounds=1, iterations=1)

    report.header("Table 4 (live, scale model): MRR mem vs disk (COMET)")
    report.row("mode", "MRR", "epoch s", "io MiB/epoch", widths=[8, 8, 9, 13])
    report.row("memory", f"{mem.final_mrr:.4f}",
               f"{mem.mean_epoch_seconds:.2f}", "-", widths=[8, 8, 9, 13])
    report.row("disk", f"{disk_result.final_mrr:.4f}",
               f"{disk_result.mean_epoch_seconds:.2f}",
               f"{disk_result.epochs[0].io_bytes >> 20}", widths=[8, 8, 9, 13])
    report.line("paper FB: .7285 mem vs .7216 disk (1% gap); Wiki keeps a "
                "larger gap (.4655 vs .4156) — open problem per Section 7.2")

    assert mem.final_mrr > 0.2
    assert disk_result.final_mrr > mem.final_mrr * 0.75
